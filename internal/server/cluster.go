package server

// The cluster layer: spec ownership sharded over a node ring, request
// forwarding, and owner-to-follower delta replication.
//
// Every node runs the same Server with the same ring configuration and
// computes spec placement independently (rendezvous hashing, see
// internal/cluster). The owner of a spec is its single writer: writes
// arriving anywhere else are forwarded to it (one hop — a forwarded
// request is marked and never re-forwarded). After each local write the
// owner streams a replication frame to the spec's followers: full
// canonical source for registrations and re-syncs, the original wire
// delta for patches. A follower applies a delta frame through the same
// incremental patch path the owner used — the cached grounded reasoner
// absorbs the delta via osolve.ApplyDelta instead of re-grounding,
// which is the entire point: a patch grounds once, cluster-wide.
//
// Replication is asynchronous and per-follower ordered: one worker
// goroutine and one frame queue per peer. Every failure mode degrades
// to a full re-sync — a follower that misses frames (drop, restart,
// overflow) NACKs the next delta's version gap and receives the owner's
// current canonical source; a send failure marks the spec dirty and a
// retry tick re-syncs it. Followers therefore converge to the owner's
// version without any handshake protocol, at the cost of replica reads
// being eventually consistent (results carry SpecVersion, so clients
// always know which version answered).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"currency/internal/api"
	"currency/internal/chaos"
	"currency/internal/cluster"
	"currency/internal/core"
	"currency/internal/obs"
	"currency/internal/parse"
)

// ClusterOptions configures the cluster layer of a Server. Leaving the
// field nil in Options runs a plain single-node currencyd.
type ClusterOptions struct {
	// Self is this node's ID; it must appear in Nodes.
	Self string
	// Nodes is the full ring membership, including self. Every node of
	// the cluster must be configured with the same membership.
	Nodes []cluster.Node
	// Replicas is the number of follower copies per spec (owner not
	// counted), clamped to len(Nodes)-1.
	Replicas int
	// HTTPClient is the transport used to reach peers; nil means
	// http.DefaultClient.
	HTTPClient *http.Client
}

// replSendTimeout bounds one replication or forwarded-batch exchange
// with a peer; a slower peer is treated as failed and re-synced later.
const replSendTimeout = 30 * time.Second

// resyncTick is how often a follower link retries specs whose
// replication previously failed. Convergence after a follower rejoin
// is bounded by this plus the send itself.
const resyncTick = 50 * time.Millisecond

// frameQueueLen bounds each follower's in-order frame queue; overflow
// degrades to a full re-sync instead of blocking the write path.
const frameQueueLen = 256

// clusterState is the per-node cluster runtime.
type clusterState struct {
	s    *Server
	ring *cluster.Ring
	self cluster.Node
	hc   *http.Client

	links map[string]*followerLink // every peer, keyed by node ID
	stop  chan struct{}
	wg    sync.WaitGroup

	// nextID feeds cluster-unique spec IDs for registrations that let
	// the server assign one (prefixing the node ID keeps two nodes from
	// ever minting the same spec ID).
	nextID atomic.Uint64
}

// followerLink is the owner-side replication channel to one peer.
type followerLink struct {
	node   cluster.Node
	frames chan queuedFrame

	mu     sync.Mutex
	resync map[string]bool // specs needing a full re-sync
}

// queuedFrame carries the enqueue time so the acked frame's replication
// lag can be observed.
type queuedFrame struct {
	frame    api.ReplicationFrame
	enqueued time.Time
}

func (l *followerLink) markResync(spec string) {
	l.mu.Lock()
	if l.resync == nil {
		l.resync = make(map[string]bool)
	}
	l.resync[spec] = true
	l.mu.Unlock()
}

func (l *followerLink) takeResyncs() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.resync) == 0 {
		return nil
	}
	out := make([]string, 0, len(l.resync))
	for spec := range l.resync {
		out = append(out, spec)
	}
	l.resync = nil
	return out
}

// newClusterState validates the options and starts one replication
// worker per peer.
func newClusterState(s *Server, opts *ClusterOptions) (*clusterState, error) {
	ring, err := cluster.New(opts.Nodes, opts.Replicas)
	if err != nil {
		return nil, err
	}
	self, ok := ring.Node(opts.Self)
	if !ok {
		return nil, fmt.Errorf("cluster: self node %q not in the ring", opts.Self)
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	cs := &clusterState{
		s:     s,
		ring:  ring,
		self:  self,
		hc:    hc,
		links: make(map[string]*followerLink),
		stop:  make(chan struct{}),
	}
	for _, n := range ring.Nodes() {
		if n.ID == self.ID {
			continue
		}
		l := &followerLink{node: n, frames: make(chan queuedFrame, frameQueueLen)}
		cs.links[n.ID] = l
		cs.wg.Add(1)
		go cs.worker(l)
	}
	return cs, nil
}

// close stops the replication workers; queued frames are dropped (a
// restarted owner re-syncs followers on its next write, and followers
// NACK gaps regardless).
func (cs *clusterState) close() {
	close(cs.stop)
	cs.wg.Wait()
}

func (cs *clusterState) ringConfig() api.RingConfig {
	rc := api.RingConfig{Replicas: cs.ring.Replicas()}
	for _, n := range cs.ring.Nodes() {
		rc.Nodes = append(rc.Nodes, api.NodeInfo{ID: n.ID, Addr: n.Addr})
	}
	return rc
}

// assignID mints a cluster-unique spec ID for an empty-ID registration.
func (cs *clusterState) assignID() string {
	return fmt.Sprintf("%s-s%d", cs.self.ID, cs.nextID.Add(1))
}

// ---------------------------------------------------------------------
// Owner side: replication.

// enqueue routes a frame to every follower of the spec. A full queue
// (follower far behind) degrades to a re-sync marker instead of
// blocking the write path.
func (cs *clusterState) enqueue(frame api.ReplicationFrame) {
	for _, n := range cs.ring.Followers(frame.SpecID) {
		l := cs.links[n.ID]
		if l == nil { // self cannot follow a spec it owns
			continue
		}
		select {
		case l.frames <- queuedFrame{frame: frame, enqueued: time.Now()}:
		default:
			l.markResync(frame.SpecID)
		}
	}
}

// replicateRegister streams a freshly registered (or re-registered)
// spec to its followers as a full frame.
func (cs *clusterState) replicateRegister(e *Entry) {
	if !cs.ring.IsOwner(e.ID, cs.self.ID) {
		return
	}
	cs.enqueue(api.ReplicationFrame{
		SpecID: e.ID, Origin: cs.self.ID, ToVersion: e.Version, Source: e.Source,
	})
}

// replicateDelta streams an applied patch to the spec's followers: the
// original wire delta plus the exact version edge it moved the owner
// across, so followers at the same base apply the identical incremental
// patch.
func (cs *clusterState) replicateDelta(ne *Entry, req *api.DeltaRequest) {
	if !cs.ring.IsOwner(ne.ID, cs.self.ID) {
		return
	}
	d := *req
	d.BaseVersion = 0 // the frame's FromVersion is the guard, not the client's
	cs.enqueue(api.ReplicationFrame{
		SpecID: ne.ID, Origin: cs.self.ID,
		FromVersion: ne.Version - 1, ToVersion: ne.Version, Delta: &d,
	})
}

// replicateDelete streams a spec deletion to its followers.
func (cs *clusterState) replicateDelete(id string) {
	if !cs.ring.IsOwner(id, cs.self.ID) {
		return
	}
	cs.enqueue(api.ReplicationFrame{SpecID: id, Origin: cs.self.ID, Delete: true})
}

// worker drains one follower's frame queue in order and retries failed
// specs on a tick. Send failures never block the owner's write path —
// the spec is marked dirty and the tick re-syncs it from the registry's
// current state.
func (cs *clusterState) worker(l *followerLink) {
	defer cs.wg.Done()
	tick := time.NewTicker(resyncTick)
	defer tick.Stop()
	for {
		select {
		case <-cs.stop:
			return
		case qf := <-l.frames:
			cs.send(l, qf)
		case <-tick.C:
			for _, spec := range l.takeResyncs() {
				cs.fullSync(l, spec)
			}
		}
	}
}

// send pushes one frame; a NACKed version gap immediately escalates to
// a full re-sync, any error defers the spec to the resync tick.
func (cs *clusterState) send(l *followerLink, qf queuedFrame) {
	m := cs.s.metrics
	chaos.ReplStall.Hit()
	ack, err := cs.postFrame(l, &qf.frame)
	if err != nil {
		m.replErrors.Inc()
		l.markResync(qf.frame.SpecID)
		return
	}
	if ack.NeedFull {
		m.replResyncs.Inc()
		cs.fullSync(l, qf.frame.SpecID)
		return
	}
	m.replLag.Observe(time.Since(qf.enqueued))
	switch {
	case qf.frame.Delta != nil:
		m.replDeltas.Inc()
	case qf.frame.Source != "":
		m.replFulls.Inc()
	}
}

// fullSync pushes the owner's current canonical source (or a delete, if
// the spec is gone) to one follower.
func (cs *clusterState) fullSync(l *followerLink, spec string) {
	m := cs.s.metrics
	frame := api.ReplicationFrame{SpecID: spec, Origin: cs.self.ID, Delete: true}
	if e, ok := cs.s.registry.Get(spec); ok {
		frame = api.ReplicationFrame{
			SpecID: spec, Origin: cs.self.ID, ToVersion: e.Version, Source: e.Source,
		}
	}
	chaos.ReplStall.Hit()
	if _, err := cs.postFrame(l, &frame); err != nil {
		m.replErrors.Inc()
		l.markResync(spec)
		return
	}
	m.replFulls.Inc()
}

// postFrame runs one replication exchange with a peer.
func (cs *clusterState) postFrame(l *followerLink, frame *api.ReplicationFrame) (api.ReplicationAck, error) {
	var ack api.ReplicationAck
	body, err := json.Marshal(frame)
	if err != nil {
		return ack, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), replSendTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		l.node.Addr+"/cluster/replicate", bytes.NewReader(body))
	if err != nil {
		return ack, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cs.hc.Do(req)
	if err != nil {
		return ack, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return ack, err
	}
	if resp.StatusCode != http.StatusOK {
		return ack, fmt.Errorf("replicate to %s: HTTP %d: %s", l.node.ID, resp.StatusCode, raw)
	}
	return ack, json.Unmarshal(raw, &ack)
}

// ---------------------------------------------------------------------
// Follower side: applying replication frames.

// handleReplicate receives one replication frame from a spec's owner.
// The endpoint is deliberately outside the admission gate: replication
// keeps replicas converging exactly when the cluster is busiest, and
// its cost is bounded by a patch the owner already paid for once.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeError(w, http.StatusNotFound, "not a cluster member")
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading frame: %v", err)
		return
	}
	frame, err := api.DecodeReplicationFrame(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad replication frame: %v", err)
		return
	}
	if chaos.ReplDrop.Hit() {
		writeError(w, http.StatusServiceUnavailable, "chaos: replication frame dropped")
		return
	}
	ack, err := s.applyFrame(r.Context(), frame)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "applying frame: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, ack)
}

// applyFrame applies one replication frame to the local replica set.
func (s *Server) applyFrame(ctx context.Context, frame *api.ReplicationFrame) (api.ReplicationAck, error) {
	m := s.metrics
	switch {
	case frame.Delete:
		if s.registry.Delete(frame.SpecID) {
			s.cache.InvalidateSpec(frame.SpecID)
		}
		return api.ReplicationAck{Version: 0}, nil

	case frame.Source != "":
		e, err := s.registry.InstallReplica(frame.SpecID, frame.Source, frame.ToVersion)
		if err != nil {
			return api.ReplicationAck{}, err
		}
		if e.Version == frame.ToVersion {
			m.replicaFulls.Inc()
		}
		return api.ReplicationAck{Version: e.Version}, nil

	default: // delta frame
		e, ok := s.registry.Get(frame.SpecID)
		if !ok || e.Version < frame.FromVersion {
			m.replicaNacks.Inc()
			v := 0
			if ok {
				v = e.Version
			}
			return api.ReplicationAck{Version: v, NeedFull: true}, nil
		}
		if e.Version >= frame.ToVersion {
			// Duplicate or superseded frame (a re-sync already moved the
			// replica past it): acknowledge without applying.
			return api.ReplicationAck{Version: e.Version}, nil
		}
		ne, err := s.applyReplicaDelta(ctx, e, frame)
		if err != nil {
			// Any apply failure degrades to a full re-sync: the owner
			// applied this delta successfully, so a local failure means
			// the replica diverged somehow — resynchronize rather than
			// guess.
			m.replicaNacks.Inc()
			return api.ReplicationAck{Version: e.Version, NeedFull: true}, nil
		}
		m.replicaDeltas.Inc()
		return api.ReplicationAck{Version: ne.Version}, nil
	}
}

// applyReplicaDelta applies a streamed delta to the local replica,
// mirroring the owner's patch pipeline: the successor reasoner is built
// first — incrementally, via the cached grounded predecessor, whenever
// one exists — and only then does the registry publish the
// owner-assigned version. This is the replication win the BENCH
// incremental rows measure: the owner grounded the patch once, and the
// replica pays only osolve.ApplyDelta.
func (s *Server) applyReplicaDelta(ctx context.Context, e *Entry, frame *api.ReplicationFrame) (*Entry, error) {
	tr := obs.From(ctx)
	d, err := resolveDelta(e, frame.Delta)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	ns, _, err := d.Apply(e.File.Spec)
	if err != nil {
		return nil, err
	}
	s.metrics.patchDur.With(stageDeltaApply).Observe(time.Since(t0))
	var nr *core.Reasoner
	usedPatch := false
	t1 := time.Now()
	if old, ok := s.cache.Peek(reasonerKey{id: e.ID, version: e.Version}); ok {
		nr, err = old.Patched(d)
		usedPatch = true
	} else {
		nr, err = core.NewReasoner(ns)
	}
	if err != nil {
		return nil, err
	}
	stage := stageReground
	if usedPatch {
		stage = stageRemap
	}
	s.metrics.patchDur.With(stage).Observe(time.Since(t1))
	if tr != nil {
		tr.AddSpan("replica."+stage, t1, fmt.Sprintf("spec=%s %d->%d", e.ID, frame.FromVersion, frame.ToVersion))
	}
	nr.Engine().SetWorkers(s.workers)
	nr.Engine().SetStatsSink(&s.metrics.engine)
	ne, err := s.registry.PatchReplicaEntry(e.ID, e.Version, frame.ToVersion, &parse.File{Spec: ns, Queries: e.File.Queries})
	if err != nil {
		return nil, err
	}
	s.cache.Install(reasonerKey{id: ne.ID, version: ne.Version}, nr, usedPatch)
	return ne, nil
}

// ---------------------------------------------------------------------
// Forwarding.

// forwardSpec reports whether this request was proxied to the spec's
// owner (true: the response is already written). A request serves
// locally when the node is single-node, already forwarded once (one-hop
// rule), the owner, or — for reads — a follower whose replica of the
// spec has arrived.
func (s *Server) forwardSpec(w http.ResponseWriter, r *http.Request, id string, write bool) bool {
	cs := s.cluster
	if cs == nil || r.Header.Get(api.ForwardHeader) != "" {
		return false
	}
	if cs.ring.IsOwner(id, cs.self.ID) {
		return false
	}
	if !write && cs.ring.IsHolder(id, cs.self.ID) {
		if _, ok := s.registry.Get(id); ok {
			return false // serve the local replica (eventually consistent)
		}
	}
	cs.forward(w, r, cs.ring.Owner(id))
	return true
}

// forward proxies the request to the owner verbatim, marking it so the
// owner never forwards again. The caller's context (and therefore its
// class deadline) bounds the hop; a dead or slow owner surfaces as 504.
func (cs *clusterState) forward(w http.ResponseWriter, r *http.Request, owner cluster.Node) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading request for forward: %v", err)
		return
	}
	cs.proxyBody(w, r, owner, body)
}

// forwardJSON proxies a request whose body was already decoded (the
// register path, which may rewrite the spec ID before routing),
// re-marshaling v as the forwarded body.
func (cs *clusterState) forwardJSON(w http.ResponseWriter, r *http.Request, owner cluster.Node, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding request for forward: %v", err)
		return
	}
	cs.proxyBody(w, r, owner, body)
}

func (cs *clusterState) proxyBody(w http.ResponseWriter, r *http.Request, owner cluster.Node, body []byte) {
	m := cs.s.metrics
	chaos.ForwardStall.Hit()
	m.forwarded.Inc()
	req, err := http.NewRequestWithContext(r.Context(), r.Method,
		owner.Addr+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		m.forwardErrors.Inc()
		writeError(w, http.StatusBadGateway, "forward to %s: %v", owner.ID, err)
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	req.Header.Set(api.ForwardHeader, cs.self.ID)
	resp, err := cs.hc.Do(req)
	if err != nil {
		m.forwardErrors.Inc()
		writeError(w, http.StatusGatewayTimeout, "forward to owner %s failed: %v", owner.ID, err)
		return
	}
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, io.LimitReader(resp.Body, 64<<20))
}

// ---------------------------------------------------------------------
// Cluster endpoints.

// handleClusterStatus serves the node's identity, ring and version
// vector — the convergence and lag probe for peers, harnesses and
// operators.
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	cs := s.cluster
	if cs == nil {
		writeError(w, http.StatusNotFound, "not a cluster member")
		return
	}
	writeJSON(w, http.StatusOK, api.ClusterStatus{
		Self:     api.NodeInfo{ID: cs.self.ID, Addr: cs.self.Addr},
		Ring:     cs.ringConfig(),
		Versions: s.registry.Versions(),
		Stats:    *s.clusterStats(),
	})
}

// clusterStats snapshots the cluster-layer counters (nil off-cluster).
func (s *Server) clusterStats() *api.ClusterStats {
	if s.cluster == nil {
		return nil
	}
	m := s.metrics
	return &api.ClusterStats{
		NodeID:               s.cluster.self.ID,
		Forwarded:            m.forwarded.Load(),
		ForwardErrors:        m.forwardErrors.Load(),
		ReplDeltasSent:       m.replDeltas.Load(),
		ReplFullsSent:        m.replFulls.Load(),
		ReplErrors:           m.replErrors.Load(),
		ReplResyncs:          m.replResyncs.Load(),
		ReplicaDeltasApplied: m.replicaDeltas.Load(),
		ReplicaFullsApplied:  m.replicaFulls.Load(),
		ReplicaNacks:         m.replicaNacks.Load(),
	}
}

// handleClusterBatch fans a multi-spec decision list across the ring:
// requests this node can serve (owner, or follower with the replica in
// hand) run on the local worker pool; the rest are grouped by owner and
// forwarded in one sub-batch per peer, in parallel. Results keep
// request order, with per-request failures in-line.
func (s *Server) handleClusterBatch(w http.ResponseWriter, r *http.Request) {
	var req api.ClusterBatchRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, http.StatusBadRequest, "cluster batch needs at least one request")
		return
	}
	results := make([]api.DecisionResult, len(req.Requests))
	cs := s.cluster
	oneHop := r.Header.Get(api.ForwardHeader) != ""

	var local []int
	remote := make(map[string][]int) // owner node ID -> request indices
	for i, cd := range req.Requests {
		if cd.Spec == "" {
			results[i] = api.DecisionResult{Op: cd.Op, Error: "cluster batch request without spec"}
			continue
		}
		serveLocal := cs == nil || oneHop || cs.ring.IsOwner(cd.Spec, cs.self.ID)
		if !serveLocal && cs.ring.IsHolder(cd.Spec, cs.self.ID) {
			_, serveLocal = s.registry.Get(cd.Spec)
		}
		if serveLocal {
			local = append(local, i)
		} else {
			owner := cs.ring.Owner(cd.Spec)
			remote[owner.ID] = append(remote[owner.ID], i)
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.runLocalClusterBatch(r.Context(), req.Requests, local, results)
	}()
	for ownerID, idxs := range remote {
		wg.Add(1)
		go func(ownerID string, idxs []int) {
			defer wg.Done()
			cs.forwardBatch(r.Context(), ownerID, req.Requests, idxs, results)
		}(ownerID, idxs)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, api.ClusterBatchResponse{Results: results})
}

// runLocalClusterBatch executes the locally served indices over the
// bounded worker pool.
func (s *Server) runLocalClusterBatch(ctx context.Context, reqs []api.ClusterDecision, idxs []int, results []api.DecisionResult) {
	if len(idxs) == 0 {
		return
	}
	workers := s.workers
	if workers > len(idxs) {
		workers = len(idxs)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				cd := &reqs[i]
				e, ok := s.registry.Get(cd.Spec)
				if !ok {
					results[i] = api.DecisionResult{Op: cd.Op, Error: fmt.Sprintf("no spec %q", cd.Spec)}
					continue
				}
				results[i] = s.decide(ctx, e, &cd.DecisionRequest)
			}
		}()
	}
	for _, i := range idxs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// forwardBatch sends one owner's share of a cluster batch as a
// sub-batch and scatters the results back; an unreachable owner fails
// only its own share.
func (cs *clusterState) forwardBatch(ctx context.Context, ownerID string, reqs []api.ClusterDecision, idxs []int, results []api.DecisionResult) {
	m := cs.s.metrics
	chaos.ForwardStall.Hit()
	m.forwarded.Inc()
	owner, _ := cs.ring.Node(ownerID)
	sub := api.ClusterBatchRequest{Requests: make([]api.ClusterDecision, len(idxs))}
	for j, i := range idxs {
		sub.Requests[j] = reqs[i]
	}
	fail := func(err error) {
		m.forwardErrors.Inc()
		for _, i := range idxs {
			results[i] = api.DecisionResult{Op: reqs[i].Op, Error: fmt.Sprintf("owner %s unreachable: %v", ownerID, err)}
		}
	}
	body, err := json.Marshal(sub)
	if err != nil {
		fail(err)
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner.Addr+"/cluster/batch", bytes.NewReader(body))
	if err != nil {
		fail(err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.ForwardHeader, cs.self.ID)
	resp, err := cs.hc.Do(req)
	if err != nil {
		fail(err)
		return
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		fail(err)
		return
	}
	if resp.StatusCode != http.StatusOK {
		fail(fmt.Errorf("HTTP %d: %s", resp.StatusCode, raw))
		return
	}
	var out api.ClusterBatchResponse
	if err := json.Unmarshal(raw, &out); err != nil || len(out.Results) != len(idxs) {
		fail(fmt.Errorf("bad sub-batch response (%d results for %d requests): %v", len(out.Results), len(idxs), err))
		return
	}
	for j, i := range idxs {
		results[i] = out.Results[j]
	}
}
