package server_test

// End-to-end exercise of the live-update pipeline: an in-process
// currencyd instance receives a PATCH stream of random deltas — tuple
// inserts AND deletes, order reveals, constraint and copy-function
// changes, the exact JSON lines currencygen -updates emits — through the
// Go client while concurrent queries hammer the same spec, and after
// every version the served verdicts (consistency and a sweep of certain
// pairs) must match a reasoner grounded from scratch on the identically
// evolved specification. CI runs this package under -race, so the test
// also stresses the registry/cache/engine swap paths for data races.

import (
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"currency/internal/api"
	"currency/internal/core"
	"currency/internal/gen"
	"currency/internal/parse"
	"currency/internal/server"
	"currency/internal/spec"
)

func TestEndToEndPatchStreamUnderLoad(t *testing.T) {
	c, _ := newTestServer(t, server.Options{CacheSize: 8, Workers: 4})
	cfg := gen.Config{
		Seed: 11, Relations: 2, Entities: 6, TuplesPerEntity: 3,
		Attrs: 2, Domain: 3, OrderDensity: 0.3, Constraints: 2, Copies: 1, CopyDensity: 0.5,
	}
	cur := gen.Random(cfg)
	if _, err := c.RegisterSpec("live", parse.Marshal(cur)); err != nil {
		t.Fatal(err)
	}

	// Background queriers: always-valid decisions in a tight loop, so
	// every PATCH races in-flight reads of the previous version. Their
	// verdicts race the version bumps and are not asserted here (the
	// driver asserts per-version correctness below); they must simply
	// never fail transport- or server-side.
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				var err error
				if (g+i)%2 == 0 {
					_, err = c.Consistent("live")
				} else {
					_, err = c.Deterministic("live", "R0")
				}
				if err != nil {
					t.Errorf("querier %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	defer func() {
		close(done)
		wg.Wait()
	}()

	// checkVersion compares the served verdicts against a from-scratch
	// reasoner over the locally evolved specification.
	checkVersion := func(version int, s *spec.Spec) {
		t.Helper()
		fresh, err := core.NewReasoner(s)
		if err != nil {
			t.Fatalf("version %d: fresh reasoner: %v", version, err)
		}
		res, err := c.Consistent("live")
		if err != nil {
			t.Fatalf("version %d: consistent: %v", version, err)
		}
		if res.SpecVersion != version {
			t.Fatalf("version %d: decision ran against version %d", version, res.SpecVersion)
		}
		if res.Holds == nil || *res.Holds != fresh.Consistent() {
			t.Fatalf("version %d: served consistent=%v, from-scratch=%v", version, res.Holds, fresh.Consistent())
		}
		for _, r := range s.Relations {
			name := r.Schema.Name
			for _, g := range r.Entities() {
				if len(g.Members) < 2 {
					continue
				}
				for _, ai := range r.Schema.NonEIDIndexes() {
					attr := r.Schema.Attrs[ai]
					for _, pair := range [][2]int{
						{g.Members[0], g.Members[1]},
						{g.Members[1], g.Members[0]},
					} {
						want, err := fresh.CertainOrder([]core.OrderRequirement{
							{Rel: name, Attr: attr, I: pair[0], J: pair[1]},
						})
						if err != nil {
							t.Fatalf("version %d: fresh certain order: %v", version, err)
						}
						res, err := c.CertainOrder("live", []api.OrderPair{{
							Rel: name, Attr: attr,
							I: strconv.Itoa(pair[0]), J: strconv.Itoa(pair[1]),
						}})
						if err != nil {
							t.Fatalf("version %d: certain order: %v", version, err)
						}
						if res.Holds == nil || *res.Holds != want {
							t.Fatalf("version %d: certain(%s.%s %d≺%d): served=%v, from-scratch=%v",
								version, name, attr, pair[0], pair[1], res.Holds, want)
						}
					}
				}
			}
		}
	}

	checkVersion(1, cur)
	rng := rand.New(rand.NewSource(13))
	version := 1
	for step := 0; step < 8; step++ {
		d := gen.RandomDelta(rng, cur, gen.DeltaConfig{
			Inserts: 2, NewEntity: 0.3, Deletes: 2, Orders: 1,
			PConstraint: 0.3, PCopyDrop: 0.2,
		})
		res, err := c.PatchSpec("live", gen.WireDelta(cur, d))
		if err != nil {
			t.Fatalf("step %d: patch: %v", step, err)
		}
		version++
		if res.Version != version {
			t.Fatalf("step %d: patched to version %d, want %d", step, res.Version, version)
		}
		next, _, err := d.Apply(cur)
		if err != nil {
			t.Fatalf("step %d: local apply diverged from the server's: %v", step, err)
		}
		cur = next
		checkVersion(version, cur)
	}
}
