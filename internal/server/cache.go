package server

import (
	"container/list"
	"sync"
	"sync/atomic"

	"currency/internal/core"
)

// reasonerKey identifies a grounded reasoner: one spec id at one version.
// A version bump yields a new key, so stale reasoners age out of the LRU
// instead of ever being served for the updated spec.
type reasonerKey struct {
	id      string
	version int
}

// cacheEntry holds one grounding, performed at most once. Waiters share
// the result through the sync.Once (singleflight): under a thundering herd
// on a cold key, exactly one request pays the grounding cost. ready flips
// (inside the Once, so the atomic store publishes r/err) when the build
// finished — the patch path peeks at predecessors without joining their
// Once, since joining would ground a version nobody asked for.
type cacheEntry struct {
	key   reasonerKey
	once  sync.Once
	r     *core.Reasoner
	err   error
	ready atomic.Bool
}

// build runs the entry's singleflight once and reports the result.
func (e *cacheEntry) build(f func() (*core.Reasoner, error)) (*core.Reasoner, error) {
	e.once.Do(func() {
		e.r, e.err = f()
		e.ready.Store(true)
	})
	return e.r, e.err
}

// ReasonerCache is an LRU cache of grounded core.Reasoners. Grounding
// (constraint instantiation plus base-state propagation in the solver) is
// the expensive, per-spec part of every exact decision; caching it makes
// repeated queries against a registered spec pay only the search. The
// cached reasoners are served to concurrent requests simultaneously —
// safe because the exact read path never mutates reasoner or spec (see
// the concurrency notes on core.Reasoner).
//
// A capacity of 0 disables caching: every Get grounds afresh. That mode
// exists for the cache-speedup benchmark and as an operator escape hatch.
type ReasonerCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; values are *cacheEntry
	items map[reasonerKey]*list.Element

	// hits/misses are atomics so the counters never extend the critical
	// section and the disabled-cache path stays lock-free.
	hits   atomic.Uint64
	misses atomic.Uint64
	// patched/regrounded count how spec updates were absorbed: by
	// patching a cached grounded predecessor vs grounding from scratch.
	patched    atomic.Uint64
	regrounded atomic.Uint64
}

// NewReasonerCache returns a cache holding at most capacity reasoners.
func NewReasonerCache(capacity int) *ReasonerCache {
	return &ReasonerCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[reasonerKey]*list.Element),
	}
}

// Get returns the reasoner for key, grounding it with build on a miss.
// Concurrent Gets for the same cold key ground once and share the result;
// Gets for different keys ground in parallel (the lock guards only the
// index, never the grounding).
func (c *ReasonerCache) Get(key reasonerKey, build func() (*core.Reasoner, error)) (*core.Reasoner, error) {
	if c.cap <= 0 {
		// cap is immutable after NewReasonerCache, so the disabled mode
		// never needs the mutex at all.
		c.misses.Add(1)
		return build()
	}

	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.hits.Add(1)
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.mu.Unlock()
		return e.build(build)
	}
	c.misses.Add(1)
	e := &cacheEntry{key: key}
	el := c.ll.PushFront(e)
	c.items[key] = el
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	c.mu.Unlock()

	if _, err := e.build(build); err != nil {
		// Grounding failures are not worth a cache slot; drop the entry so
		// the next request retries (waiters that already joined this entry
		// still observe the error through the Once).
		c.mu.Lock()
		if el, ok := c.items[key]; ok && el.Value.(*cacheEntry) == e {
			c.ll.Remove(el)
			delete(c.items, key)
		}
		c.mu.Unlock()
		return nil, e.err
	}
	return e.r, nil
}

// Peek returns the reasoner cached for key when its grounding already
// completed successfully, without joining any in-flight build. The
// PATCH path uses it to find a grounded predecessor worth patching.
func (c *ReasonerCache) Peek(key reasonerKey) (*core.Reasoner, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if !e.ready.Load() || e.err != nil {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return e.r, true
}

// Install publishes a pre-built reasoner under key and counts how the
// spec update was absorbed (patched incrementally vs re-grounded from
// scratch). The PATCH path builds the successor BEFORE the registry
// publishes the new version, so a failed build leaves every layer
// untouched; Install only ever records a success. An existing entry for
// the key is kept (idempotent retries).
func (c *ReasonerCache) Install(key reasonerKey, r *core.Reasoner, patched bool) {
	if patched {
		c.patched.Add(1)
	} else {
		c.regrounded.Add(1)
	}
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	e := &cacheEntry{key: key}
	// Fire the singleflight with the pre-built reasoner: a later Get joins
	// this completed Once instead of running its cold build closure (which
	// would silently overwrite the installed reasoner with a re-ground).
	e.once.Do(func() {
		e.r = r
		e.ready.Store(true)
	})
	c.items[key] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// InvalidateSpec drops every cached version of the given spec id; called
// on spec deletion (updates need no eviction — they change the key — but
// deletion should release memory promptly).
func (c *ReasonerCache) InvalidateSpec(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.items {
		if key.id == id {
			c.ll.Remove(el)
			delete(c.items, key)
		}
	}
}

// Stats returns (entries, capacity, hits, misses, patched, regrounded).
func (c *ReasonerCache) Stats() (entries, capacity int, hits, misses, patched, regrounded uint64) {
	c.mu.Lock()
	entries = c.ll.Len()
	c.mu.Unlock()
	return entries, c.cap, c.hits.Load(), c.misses.Load(), c.patched.Load(), c.regrounded.Load()
}
