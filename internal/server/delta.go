package server

// Wire-delta resolution: PATCH /specs/{id} bodies arrive with tuples
// addressed by label or decimal index and constraints in the textual
// declaration syntax; this file lowers them onto the structured
// spec.Delta the engine consumes. Deletes address the PRE-delta
// instance; order adds and copy mappings address the POST-delta one
// (surviving tuples keep their labels, deleted tuples shift later
// indices down, inserted tuples append), so one request can insert a
// tuple and immediately order it against existing ones.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"currency/internal/api"
	"currency/internal/copyfn"
	"currency/internal/dc"
	"currency/internal/parse"
	"currency/internal/relation"
	"currency/internal/spec"
)

// resolveDelta lowers a wire delta against the entry it patches.
func resolveDelta(e *Entry, req *api.DeltaRequest) (*spec.Delta, error) {
	d := &spec.Delta{}
	s := e.File.Spec

	for _, tr := range req.DeleteTuples {
		r, ok := s.Relation(tr.Rel)
		if !ok {
			return nil, fmt.Errorf("delete references unknown relation %q", tr.Rel)
		}
		idx, err := resolveTuple(r, tr.Ref)
		if err != nil {
			return nil, err
		}
		d.Deletes = append(d.Deletes, spec.TupleDelete{Rel: tr.Rel, Index: idx})
	}

	for _, ti := range req.InsertTuples {
		r, ok := s.Relation(ti.Rel)
		if !ok {
			return nil, fmt.Errorf("insert references unknown relation %q", ti.Rel)
		}
		if len(ti.Values) != r.Schema.Arity() {
			return nil, fmt.Errorf("insert into %s carries %d values, schema has %d attributes",
				ti.Rel, len(ti.Values), r.Schema.Arity())
		}
		t := make(relation.Tuple, len(ti.Values))
		for i, v := range ti.Values {
			val, err := wireToValue(v)
			if err != nil {
				return nil, fmt.Errorf("insert into %s, value %d: %w", ti.Rel, i, err)
			}
			t[i] = val
		}
		d.Inserts = append(d.Inserts, spec.TupleInsert{Rel: ti.Rel, Label: ti.Label, Tuple: t})
	}

	// Post-delta address space per touched relation: label → final index
	// and the final tuple count, for validating numeric refs.
	res := newPostResolver(s, d)
	for _, op := range req.AddOrders {
		r, ok := s.Relation(op.Rel)
		if !ok {
			return nil, fmt.Errorf("order references unknown relation %q", op.Rel)
		}
		if _, ok := r.Schema.AttrIndex(op.Attr); !ok {
			return nil, fmt.Errorf("order references unknown attribute %s.%s", op.Rel, op.Attr)
		}
		i, err := res.resolve(op.Rel, op.I)
		if err != nil {
			return nil, err
		}
		j, err := res.resolve(op.Rel, op.J)
		if err != nil {
			return nil, err
		}
		d.Orders = append(d.Orders, spec.OrderAdd{Rel: op.Rel, Attr: op.Attr, I: i, J: j})
	}

	d.DropConstraints = append(d.DropConstraints, req.DropConstraints...)
	for _, src := range req.AddConstraints {
		c, err := parseConstraintDecl(s, src)
		if err != nil {
			return nil, err
		}
		d.AddConstraints = append(d.AddConstraints, c)
	}

	d.DropCopies = append(d.DropCopies, req.DropCopies...)
	for _, ca := range req.AddCopies {
		cf := copyfn.New(ca.Name, ca.Target, ca.Source, ca.TargetAttrs, ca.SourceAttrs)
		for _, m := range ca.Map {
			t, err := res.resolve(ca.Target, m[0])
			if err != nil {
				return nil, fmt.Errorf("copy %s: %w", ca.Name, err)
			}
			sidx, err := res.resolve(ca.Source, m[1])
			if err != nil {
				return nil, fmt.Errorf("copy %s: %w", ca.Name, err)
			}
			cf.Set(t, sidx)
		}
		d.AddCopies = append(d.AddCopies, cf)
	}
	return d, nil
}

// wireToValue converts a JSON value to a relation value: strings as
// strings, numbers as integers (the textual format carries no floats).
func wireToValue(v any) (relation.Value, error) {
	switch x := v.(type) {
	case string:
		return relation.S(x), nil
	case float64:
		if x != float64(int64(x)) {
			return relation.Value{}, fmt.Errorf("non-integer number %v", x)
		}
		return relation.I(int64(x)), nil
	case int64:
		return relation.I(x), nil
	default:
		return relation.Value{}, fmt.Errorf("unsupported value %T (want string or integer)", v)
	}
}

// postResolver maps tuple refs onto the post-delta index space of each
// relation the delta touches. The per-relation translation tables (delete
// remap, insert label positions) are computed once and cached — a delta
// can carry many order pairs and copy mappings, each with two refs.
type postResolver struct {
	s    *spec.Spec
	d    *spec.Delta
	rels map[string]*relResolver
}

type relResolver struct {
	remap     []int // pre-delta index -> post-delta index, -1 deleted
	survivors int
	insertPos map[string]int // insert label -> post-delta index
	inserted  int
}

func newPostResolver(s *spec.Spec, d *spec.Delta) *postResolver {
	return &postResolver{s: s, d: d, rels: make(map[string]*relResolver)}
}

func (pr *postResolver) relFor(rel string, n int) *relResolver {
	rr, ok := pr.rels[rel]
	if ok {
		return rr
	}
	var dels []int
	for _, td := range pr.d.Deletes {
		if td.Rel == rel {
			dels = append(dels, td.Index)
		}
	}
	sort.Ints(dels)
	rr = &relResolver{remap: make([]int, n), insertPos: make(map[string]int)}
	next, di := 0, 0
	for i := 0; i < n; i++ {
		if di < len(dels) && dels[di] == i {
			rr.remap[i] = -1
			di++
			continue
		}
		rr.remap[i] = next
		next++
	}
	rr.survivors = next
	for _, ti := range pr.d.Inserts {
		if ti.Rel != rel {
			continue
		}
		if ti.Label != "" {
			rr.insertPos[ti.Label] = rr.survivors + rr.inserted
		}
		rr.inserted++
	}
	pr.rels[rel] = rr
	return rr
}

// resolve maps a label or decimal index to a post-delta tuple index.
// Labels match surviving pre-delta tuples (remapped past deletions) or
// labeled inserts — a label freed by a delete and reused by an insert in
// the same delta resolves to the insert, mirroring Delta.Apply; numeric
// refs address the post-delta instance directly.
func (pr *postResolver) resolve(rel, ref string) (int, error) {
	r, ok := pr.s.Relation(rel)
	if !ok {
		return 0, fmt.Errorf("unknown relation %q", rel)
	}
	rr := pr.relFor(rel, r.Len())
	if idx, ok := r.LabelIndex(ref); ok && rr.remap[idx] >= 0 {
		return rr.remap[idx], nil
	}
	if pos, ok := rr.insertPos[ref]; ok {
		return pos, nil
	}
	i, err := strconv.Atoi(ref)
	if err != nil || i < 0 || i >= rr.survivors+rr.inserted {
		return 0, fmt.Errorf("relation %s has no tuple %q after this delta", rel, ref)
	}
	return i, nil
}

// parseConstraintDecl parses one textual constraint declaration against
// the entry's schemas (the declaration grammar needs the relations in
// scope).
func parseConstraintDecl(s *spec.Spec, src string) (*dc.Constraint, error) {
	var b strings.Builder
	for _, r := range s.Relations {
		fmt.Fprintf(&b, "relation %s(%s)\n", r.Schema.Name, strings.Join(r.Schema.Attrs, ", "))
	}
	b.WriteString(src)
	f, err := parse.ParseFile(b.String())
	if err != nil {
		return nil, fmt.Errorf("constraint %q: %w", src, err)
	}
	if len(f.Spec.Constraints) != 1 || len(f.Queries) != 0 {
		return nil, fmt.Errorf("constraint source must hold exactly one constraint declaration")
	}
	return f.Spec.Constraints[0], nil
}
