package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"currency/internal/core"
	"currency/internal/paperdb"
)

func buildPaper() (*core.Reasoner, error) {
	return core.NewReasoner(paperdb.SpecS0())
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewReasonerCache(2)
	k := func(i int) reasonerKey { return reasonerKey{id: fmt.Sprintf("s%d", i), version: 1} }

	// Fill: s0, s1; then touch s0 so s1 becomes least recently used.
	for _, i := range []int{0, 1, 0} {
		if _, err := c.Get(k(i), buildPaper); err != nil {
			t.Fatal(err)
		}
	}
	entries, capacity, hits, misses, _, _ := c.Stats()
	if entries != 2 || capacity != 2 {
		t.Fatalf("entries=%d cap=%d, want 2/2", entries, capacity)
	}
	if hits != 1 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 1/2", hits, misses)
	}

	// s2 evicts the least recently used entry, which is s1.
	if _, err := c.Get(k(2), buildPaper); err != nil {
		t.Fatal(err)
	}
	var rebuilt atomic.Int32
	counting := func() (*core.Reasoner, error) { rebuilt.Add(1); return buildPaper() }
	for _, i := range []int{0, 2} {
		if _, err := c.Get(k(i), counting); err != nil {
			t.Fatal(err)
		}
	}
	if got := rebuilt.Load(); got != 0 {
		t.Fatalf("s0 and s2 should still be cached, got %d rebuilds", got)
	}
	if _, err := c.Get(k(1), counting); err != nil {
		t.Fatal(err)
	}
	if got := rebuilt.Load(); got != 1 {
		t.Fatalf("s1 should have been evicted and rebuilt once, got %d rebuilds", got)
	}
}

func TestCacheVersionBumpIsNewKey(t *testing.T) {
	c := NewReasonerCache(8)
	var builds atomic.Int32
	counting := func() (*core.Reasoner, error) { builds.Add(1); return buildPaper() }

	for i := 0; i < 3; i++ {
		if _, err := c.Get(reasonerKey{id: "s", version: 1}, counting); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Get(reasonerKey{id: "s", version: 2}, counting); err != nil {
		t.Fatal(err)
	}
	if got := builds.Load(); got != 2 {
		t.Fatalf("expected one build per version, got %d", got)
	}
}

// TestCacheSingleflight checks that a thundering herd on one cold key
// grounds exactly once while other keys proceed independently.
func TestCacheSingleflight(t *testing.T) {
	c := NewReasonerCache(8)
	var builds atomic.Int32
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, err := c.Get(reasonerKey{id: "hot", version: 1}, func() (*core.Reasoner, error) {
				builds.Add(1)
				return buildPaper()
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("thundering herd grounded %d times, want 1", got)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewReasonerCache(8)
	boom := fmt.Errorf("boom")
	if _, err := c.Get(reasonerKey{id: "s", version: 1}, func() (*core.Reasoner, error) { return nil, boom }); err != boom {
		t.Fatalf("got %v, want boom", err)
	}
	entries, _, _, _, _, _ := c.Stats()
	if entries != 0 {
		t.Fatalf("failed grounding must not occupy a slot, have %d entries", entries)
	}
	// The next request retries and can succeed.
	if _, err := c.Get(reasonerKey{id: "s", version: 1}, buildPaper); err != nil {
		t.Fatal(err)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewReasonerCache(0)
	var builds atomic.Int32
	for i := 0; i < 3; i++ {
		if _, err := c.Get(reasonerKey{id: "s", version: 1}, func() (*core.Reasoner, error) {
			builds.Add(1)
			return buildPaper()
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := builds.Load(); got != 3 {
		t.Fatalf("disabled cache should ground per request, got %d builds", got)
	}
}

// TestRegistryVersionMonotonicAcrossDelete guards the reasoner-cache key
// contract: a deleted and re-registered id must not reuse version numbers,
// or an orphaned cache entry (re-inserted by an in-flight request after
// InvalidateSpec) could serve the old spec's reasoner for the new spec.
func TestRegistryVersionMonotonicAcrossDelete(t *testing.T) {
	g := NewRegistry()
	src := "relation R(eid, a)\ninstance R { t0: (\"e\", 1) }\n"
	e1, err := g.Put("s", src)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Delete("s") {
		t.Fatal("delete failed")
	}
	e2, err := g.Put("s", src)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Version <= e1.Version {
		t.Fatalf("re-registered id reused version %d (was %d)", e2.Version, e1.Version)
	}
}

// TestCacheInstallServesWithoutRebuild pins the Install contract: a
// pre-built reasoner published by the PATCH path must be what later Gets
// return — if Install leaves the entry's singleflight unfired, the first
// decision after every patch silently re-grounds from scratch and throws
// the transferred memos away.
func TestCacheInstallServesWithoutRebuild(t *testing.T) {
	c := NewReasonerCache(8)
	installed, err := buildPaper()
	if err != nil {
		t.Fatal(err)
	}
	key := reasonerKey{id: "s", version: 2}
	c.Install(key, installed, true)

	var rebuilt atomic.Int32
	got, err := c.Get(key, func() (*core.Reasoner, error) {
		rebuilt.Add(1)
		return buildPaper()
	})
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Load() != 0 {
		t.Fatalf("Get after Install rebuilt %d times, want 0", rebuilt.Load())
	}
	if got != installed {
		t.Fatal("Get did not return the installed reasoner")
	}
	if r, ok := c.Peek(key); !ok || r != installed {
		t.Fatal("Peek did not see the installed reasoner")
	}
}
