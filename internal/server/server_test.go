package server_test

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"currency/internal/api"
	"currency/internal/client"
	"currency/internal/gen"
	"currency/internal/paperdb"
	"currency/internal/parse"
	"currency/internal/server"
)

// newTestServer starts an httptest server around a fresh currencyd and
// returns a client for it.
func newTestServer(t testing.TB, opts server.Options) (*client.Client, *server.Server) {
	t.Helper()
	srv := server.New(opts)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return client.New(hs.URL, hs.Client()), srv
}

// paperSource renders the paper's S0 (Figure 1, Example 2.3) with queries
// Q1–Q4 in the wire format.
func paperSource() string {
	s0 := paperdb.SpecS0()
	return parse.Marshal(s0, paperdb.Q1(), paperdb.Q2(), paperdb.Q3(), paperdb.Q4())
}

// constraintFreeSource renders S0's instances and copy function without
// denial constraints — the PTIME-eligible variant used for update tests.
func constraintFreeSource() string {
	s0 := paperdb.SpecS0()
	s0.Constraints = nil
	return parse.Marshal(s0, paperdb.Q1(), paperdb.Q2(), paperdb.Q3(), paperdb.Q4())
}

func TestRegisterQueryUpdateRequery(t *testing.T) {
	c, _ := newTestServer(t, server.Options{})

	// Register.
	info, err := c.RegisterSpec("s0", paperSource())
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "s0" || info.Version != 1 {
		t.Fatalf("got %+v, want s0 v1", info)
	}
	if len(info.Queries) != 4 {
		t.Fatalf("expected 4 declared queries, got %v", info.Queries)
	}

	// The canonical source must round-trip.
	got, err := c.GetSpec("s0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parse.ParseFile(got.Source); err != nil {
		t.Fatalf("canonical source does not parse back: %v", err)
	}

	// Query: S0 carries denial constraints, so the exact engine answers.
	res, err := c.Consistent("s0")
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != api.EngineExact || res.Holds == nil || !*res.Holds {
		t.Fatalf("consistent: got %+v, want exact/true", res)
	}
	if res.SpecVersion != 1 {
		t.Fatalf("decision ran against version %d, want 1", res.SpecVersion)
	}

	// Example 3.3: deterministic for Emp, not for Dept.
	res, err = c.Deterministic("s0", "Emp")
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds == nil || !*res.Holds {
		t.Fatalf("Emp should be deterministic (Example 3.3): %+v", res)
	}
	res, err = c.Deterministic("s0", "Dept")
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds == nil || *res.Holds {
		t.Fatalf("Dept should not be deterministic: %+v", res)
	}

	// Example 1.1: Q1=80, Q2=Dupont.
	res, err = c.CertainAnswers("s0", api.QueryRef{Name: "Q1"})
	if err != nil {
		t.Fatal(err)
	}
	assertSingleAnswer(t, res, float64(80))
	res, err = c.CertainAnswers("s0", api.QueryRef{Name: "Q2"})
	if err != nil {
		t.Fatal(err)
	}
	assertSingleAnswer(t, res, "Dupont")

	// Update: re-registering the id bumps the version; the cached v1
	// reasoner is dead weight (its key embeds the version) and decisions
	// run against the new spec.
	info, err = c.RegisterSpec("s0", constraintFreeSource())
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 {
		t.Fatalf("update should bump version to 2, got %d", info.Version)
	}

	// Re-query. Without ϕ1–ϕ4 nothing orders Mary's salaries, so Emp is no
	// longer deterministic — stale v1 cache would still say true. Force the
	// exact engine so the answer must come from a freshly grounded
	// reasoner, then check the auto-routed path agrees.
	resExact, err := decideExactDeterministic(c, "s0")
	if err != nil {
		t.Fatal(err)
	}
	if resExact.Engine != api.EngineExact || resExact.Holds == nil || *resExact.Holds {
		t.Fatalf("after update, exact Deterministic(Emp) = %+v, want false", resExact)
	}
	if resExact.SpecVersion != 2 {
		t.Fatalf("decision ran against version %d, want 2", resExact.SpecVersion)
	}
	res, err = c.Deterministic("s0", "Emp")
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != api.EnginePTime || res.Holds == nil || *res.Holds {
		t.Fatalf("after update, Deterministic(Emp) = %+v, want ptime/false", res)
	}

	// Certain answers shrink accordingly: Q1 is no longer certain.
	res, err = c.CertainAnswers("s0", api.QueryRef{Name: "Q1"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers == nil || len(res.Answers.Rows) != 0 {
		t.Fatalf("after dropping constraints Q1 should have no certain answers, got %+v", res.Answers)
	}
}

// decideExactDeterministic forces the exact engine for Deterministic(Emp)
// through the batch endpoint (the typed client exposes no Exact knob on
// purpose — it mirrors the common path).
func decideExactDeterministic(c *client.Client, id string) (api.DecisionResult, error) {
	results, err := c.Batch(id, []api.DecisionRequest{{
		Op: api.OpDeterministic, Relation: "Emp", Exact: true,
	}})
	if err != nil {
		return api.DecisionResult{}, err
	}
	if len(results) != 1 {
		return api.DecisionResult{}, fmt.Errorf("expected 1 result, got %d", len(results))
	}
	if results[0].Error != "" {
		return results[0], fmt.Errorf("%s", results[0].Error)
	}
	return results[0], nil
}

func assertSingleAnswer(t *testing.T, res api.DecisionResult, want any) {
	t.Helper()
	if res.Answers == nil || len(res.Answers.Rows) != 1 || len(res.Answers.Rows[0]) != 1 {
		t.Fatalf("expected a single one-column answer, got %+v", res.Answers)
	}
	if res.Answers.Rows[0][0] != want {
		t.Fatalf("answer = %v (%T), want %v", res.Answers.Rows[0][0], res.Answers.Rows[0][0], want)
	}
}

func TestAutoRouting(t *testing.T) {
	c, _ := newTestServer(t, server.Options{})
	if _, err := c.RegisterSpec("hard", paperSource()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterSpec("easy", constraintFreeSource()); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		id     string
		engine string
	}{
		{"hard", api.EngineExact},
		{"easy", api.EnginePTime},
	} {
		res, err := c.Consistent(tc.id)
		if err != nil {
			t.Fatal(err)
		}
		if res.Engine != tc.engine {
			t.Errorf("Consistent(%s) ran on %q, want %q", tc.id, res.Engine, tc.engine)
		}
		// Q1 is SP, so the constraint-free spec routes CCQA to PTIME too.
		res, err = c.CertainAnswers(tc.id, api.QueryRef{Name: "Q1"})
		if err != nil {
			t.Fatal(err)
		}
		if res.Engine != tc.engine {
			t.Errorf("CertainAnswers(%s) ran on %q, want %q", tc.id, res.Engine, tc.engine)
		}
	}

	// PTIME-eligible CPP without a space pick stays on the fast path...
	res, err := c.CurrencyPreserving("easy", api.QueryRef{Name: "Q1"}, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != api.EnginePTime {
		t.Errorf("CPP with default space routed to %q, want ptime", res.Engine)
	}
	// ...but an explicit extension space must force the exact engine: the
	// PTIME algorithm works in its own atom space and would silently
	// answer a different question.
	res, err = c.CurrencyPreserving("easy", api.QueryRef{Name: "Q1"}, "matching")
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != api.EngineExact {
		t.Errorf("CPP with explicit space routed to %q, want exact", res.Engine)
	}
	if _, err = c.CurrencyPreserving("easy", api.QueryRef{Name: "Q1"}, "warp"); err == nil {
		t.Error("unknown extension space must be rejected even on a PTIME-eligible spec")
	}

	// A non-SP inline query on the constraint-free spec must fall back to
	// the exact engine (Proposition 6.3 covers SP only).
	res, err = c.CertainAnswers("easy", api.QueryRef{
		Source: `query QU(ln) := exists e, fn, a, sal, st. ` +
			`(Emp(e, fn, ln, a, sal, st) and (fn = "Mary" or fn = "Bob"))`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != api.EngineExact {
		t.Errorf("non-SP query routed to %q, want exact", res.Engine)
	}
}

func TestCertainOrderLabelsAndIndexes(t *testing.T) {
	c, _ := newTestServer(t, server.Options{})
	if _, err := c.RegisterSpec("s0", paperSource()); err != nil {
		t.Fatal(err)
	}
	// ϕ1 with salaries 50 < 80 forces s1 ≺salary s3 (labels), i.e. 0 ≺ 2
	// (indexes); both addressings must agree.
	byLabel, err := c.CertainOrder("s0", []api.OrderPair{{Rel: "Emp", Attr: "salary", I: "s1", J: "s3"}})
	if err != nil {
		t.Fatal(err)
	}
	byIndex, err := c.CertainOrder("s0", []api.OrderPair{{Rel: "Emp", Attr: "salary", I: "0", J: "2"}})
	if err != nil {
		t.Fatal(err)
	}
	if byLabel.Holds == nil || !*byLabel.Holds {
		t.Fatalf("s1 ≺salary s3 should be certain under ϕ1: %+v", byLabel)
	}
	if byIndex.Holds == nil || *byIndex.Holds != *byLabel.Holds {
		t.Fatalf("label and index addressing disagree: %+v vs %+v", byLabel, byIndex)
	}
	// The reverse direction cannot be certain.
	rev, err := c.CertainOrder("s0", []api.OrderPair{{Rel: "Emp", Attr: "salary", I: "s3", J: "s1"}})
	if err != nil {
		t.Fatal(err)
	}
	if rev.Holds == nil || *rev.Holds {
		t.Fatalf("s3 ≺salary s1 must not be certain: %+v", rev)
	}
}

func TestBatchFanOut(t *testing.T) {
	c, _ := newTestServer(t, server.Options{Workers: 4})
	if _, err := c.RegisterSpec("s0", paperSource()); err != nil {
		t.Fatal(err)
	}
	reqs := []api.DecisionRequest{
		{Op: api.OpConsistent},
		{Op: api.OpDeterministic, Relation: "Emp"},
		{Op: api.OpDeterministic, Relation: "Dept"},
		{Op: api.OpCertainAnswers, Query: &api.QueryRef{Name: "Q3"}},
		{Op: api.OpCertainAnswers, Query: &api.QueryRef{Name: "nope"}}, // in-line failure
		{Op: api.OpCertainOrder, Orders: []api.OrderPair{{Rel: "Emp", Attr: "salary", I: "s1", J: "s3"}}},
	}
	results, err := c.Batch("s0", reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(results), len(reqs))
	}
	for i, res := range results {
		if res.Op != reqs[i].Op {
			t.Fatalf("result %d is for op %q, want %q (order not preserved)", i, res.Op, reqs[i].Op)
		}
	}
	if results[0].Holds == nil || !*results[0].Holds {
		t.Errorf("batch consistent: %+v", results[0])
	}
	if results[1].Holds == nil || !*results[1].Holds {
		t.Errorf("batch deterministic Emp: %+v", results[1])
	}
	if results[2].Holds == nil || *results[2].Holds {
		t.Errorf("batch deterministic Dept: %+v", results[2])
	}
	if results[3].Answers == nil || len(results[3].Answers.Rows) != 1 {
		t.Errorf("batch Q3: %+v", results[3])
	}
	if results[4].Error == "" {
		t.Error("unknown query must fail in-line, not silently succeed")
	}
	if results[5].Holds == nil || !*results[5].Holds {
		t.Errorf("batch certain-order: %+v", results[5])
	}
}

func TestCacheReuseAndStats(t *testing.T) {
	c, _ := newTestServer(t, server.Options{})
	if _, err := c.RegisterSpec("s0", paperSource()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Consistent("s0"); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Specs != 1 || st.CacheEntries != 1 {
		t.Fatalf("stats: %+v, want 1 spec / 1 cached reasoner", st)
	}
	if st.CacheMisses != 1 || st.CacheHits != 2 {
		t.Fatalf("stats: %+v, want 1 miss and 2 hits for 3 identical queries", st)
	}

	// Deleting the spec evicts its reasoners and 404s further queries.
	if err := c.DeleteSpec("s0"); err != nil {
		t.Fatal(err)
	}
	st, err = c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Specs != 0 || st.CacheEntries != 0 {
		t.Fatalf("after delete: %+v, want empty registry and cache", st)
	}
	if _, err := c.Consistent("s0"); err == nil || !strings.Contains(err.Error(), "no spec") {
		t.Fatalf("query after delete should 404, got %v", err)
	}
}

func TestGeneratedSpecsRegister(t *testing.T) {
	c, _ := newTestServer(t, server.Options{})
	// Load-test fixtures from internal/gen must flow through the wire
	// format unchanged.
	for seed := int64(1); seed <= 3; seed++ {
		src := gen.RandomSource(gen.Default(seed))
		info, err := c.RegisterSpec("", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if info.ID == "" {
			t.Fatal("server should assign an id")
		}
		if _, err := c.Consistent(info.ID); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	specs, err := c.ListSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("expected 3 specs, got %d", len(specs))
	}
}

// TestParallelRequests hammers one cached reasoner from many goroutines;
// run with -race this is the server-level concurrency-safety check for
// shared reasoner reads.
func TestParallelRequests(t *testing.T) {
	c, _ := newTestServer(t, server.Options{Workers: 8})
	if _, err := c.RegisterSpec("s0", paperSource()); err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 4 {
			case 0:
				res, err := c.Consistent("s0")
				if err == nil && (res.Holds == nil || !*res.Holds) {
					err = fmt.Errorf("consistent: %+v", res)
				}
				errs <- err
			case 1:
				res, err := c.CertainAnswers("s0", api.QueryRef{Name: "Q2"})
				if err == nil && (res.Answers == nil || len(res.Answers.Rows) != 1) {
					err = fmt.Errorf("Q2: %+v", res.Answers)
				}
				errs <- err
			case 2:
				res, err := c.Deterministic("s0", "Emp")
				if err == nil && (res.Holds == nil || !*res.Holds) {
					err = fmt.Errorf("deterministic: %+v", res)
				}
				errs <- err
			default:
				_, err := c.Batch("s0", []api.DecisionRequest{
					{Op: api.OpConsistent},
					{Op: api.OpCertainOrder, Orders: []api.OrderPair{{Rel: "Emp", Attr: "salary", I: "s1", J: "s3"}}},
				})
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestRegisterRejectsBadSource(t *testing.T) {
	c, _ := newTestServer(t, server.Options{})
	if _, err := c.RegisterSpec("bad", "relation R(eid a"); err == nil {
		t.Fatal("malformed source must be rejected")
	}
	if _, err := c.GetSpec("bad"); err == nil {
		t.Fatal("rejected spec must not be registered")
	}
	// Ids that cannot travel as one URL path segment would register fine
	// but be unreachable by every id-addressed endpoint.
	if _, err := c.RegisterSpec("a/b", constraintFreeSource()); err == nil {
		t.Fatal("slash in spec id must be rejected")
	}
}
