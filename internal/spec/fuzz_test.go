package spec_test

// Native fuzz target for the delta pipeline. The fuzzer drives a byte
// program that is decoded into a stream of deltas — tuple inserts and
// deletes, order reveals, constraint adds and drops, copy drops — against
// a generated base specification, checking two properties after every
// step:
//
//   - Apply never panics, whatever the delta (invalid deltas must come
//     back as errors);
//   - Diff recovers the change: Diff(base, Apply(base, d)) re-applies to
//     the same snapshot (modulo marshalling, which covers tuples, labels,
//     orders, constraints and copy functions).
//
// Diff is specified only up to value-equal tuple ambiguity (its greedy
// subsequence match cannot distinguish identical tuples), so the harness
// keeps every tuple value-distinct: the base specification is uniquified
// and inserted tuples carry a serial value. The external test package
// breaks the spec→parse import cycle (parse imports spec).

import (
	"fmt"
	"math/rand"
	"testing"

	"currency/internal/gen"
	"currency/internal/parse"
	"currency/internal/relation"
	"currency/internal/spec"
)

// uniquify rewrites the first non-EID attribute of every tuple to a
// distinct serial so no two tuples of a relation are value-equal.
func uniquify(s *spec.Spec) {
	serial := int64(1 << 20)
	for _, r := range s.Relations {
		ai := r.Schema.NonEIDIndexes()[0]
		for i := range r.Tuples {
			r.Tuples[i][ai] = relation.I(serial)
			serial++
		}
	}
}

// fuzzBase builds the deterministic base specification of one fuzz run.
func fuzzBase(seed int64) *spec.Spec {
	if seed < 0 {
		seed = -seed
	}
	cfg := gen.Default(seed % 997)
	cfg.Relations = 1 + int(seed%2)
	cfg.Entities = 2
	cfg.TuplesPerEntity = 2 + int(seed%2)
	s := gen.Random(cfg)
	uniquify(s)
	return s
}

// deltaProgram decodes prog into one delta against cur. Every byte
// consumed is a decision, so byte-level mutation explores the delta
// space; out-of-range references are emitted as-is to exercise Apply's
// validation.
func deltaProgram(cur *spec.Spec, prog []byte, serial *int64) (*spec.Delta, int) {
	d := &spec.Delta{}
	i := 0
	next := func() (byte, bool) {
		if i >= len(prog) {
			return 0, false
		}
		b := prog[i]
		i++
		return b, true
	}
	nops, ok := next()
	if !ok {
		return d, i
	}
	for k := byte(0); k <= nops%4; k++ {
		op, ok := next()
		if !ok {
			break
		}
		rb, _ := next()
		r := cur.Relations[int(rb)%len(cur.Relations)]
		name := r.Schema.Name
		switch op % 6 {
		case 0: // insert into an existing or fresh entity
			eb, _ := next()
			var eid relation.Value
			if ids := r.EntityIDs(); int(eb) < len(ids) {
				eid = ids[eb]
			} else {
				eid = relation.S(fmt.Sprintf("fz%d", eb))
			}
			t := make(relation.Tuple, r.Schema.Arity())
			t[r.Schema.EIDIndex] = eid
			for _, ai := range r.Schema.NonEIDIndexes() {
				t[ai] = relation.I(*serial)
				*serial++
			}
			d.Inserts = append(d.Inserts, spec.TupleInsert{Rel: name, Tuple: t})
		case 1: // delete by pre-delta index (possibly out of range)
			ib, _ := next()
			d.Deletes = append(d.Deletes, spec.TupleDelete{Rel: name, Index: int(ib)})
		case 2: // order reveal by post-delta indices (possibly invalid)
			ab, _ := next()
			ib, _ := next()
			jb, _ := next()
			ais := r.Schema.NonEIDIndexes()
			attr := r.Schema.Attrs[ais[int(ab)%len(ais)]]
			d.Orders = append(d.Orders, spec.OrderAdd{Rel: name, Attr: attr, I: int(ib), J: int(jb)})
		case 3: // add a random constraint
			cb, _ := next()
			rng := rand.New(rand.NewSource(int64(cb)))
			c := gen.RandomConstraint(rng, r.Schema, fmt.Sprintf("fzc%d", *serial))
			*serial++
			d.AddConstraints = append(d.AddConstraints, c)
		case 4: // drop a constraint by index
			cb, _ := next()
			if len(cur.Constraints) > 0 {
				d.DropConstraints = append(d.DropConstraints,
					cur.Constraints[int(cb)%len(cur.Constraints)].Name)
			}
		default: // drop a copy function by index
			cb, _ := next()
			if len(cur.Copies) > 0 {
				d.DropCopies = append(d.DropCopies,
					cur.Copies[int(cb)%len(cur.Copies)].Name)
			}
		}
	}
	return d, i
}

// FuzzDeltaApply drives random delta streams through Apply and checks
// the Diff round trip after every successful step. CI runs the target on
// a short budget; the seed corpus lives under testdata/fuzz/FuzzDeltaApply.
func FuzzDeltaApply(f *testing.F) {
	f.Add(int64(1), []byte{2, 0, 0, 1, 1, 0, 3, 2, 0, 0, 1})
	f.Add(int64(7), []byte{3, 1, 0, 2, 1, 1, 5, 3, 1, 9, 4, 0})
	f.Add(int64(42), []byte{1, 0, 1, 200, 2, 1, 0, 0, 1})
	f.Fuzz(func(t *testing.T, seed int64, prog []byte) {
		cur := fuzzBase(seed)
		serial := int64(1 << 24)
		for step := 0; step < 6 && len(prog) > 0; step++ {
			d, used := deltaProgram(cur, prog, &serial)
			prog = prog[used:]
			next, _, err := d.Apply(cur)
			if err != nil {
				continue // invalid delta: rejection, not panic, is the property
			}
			dd, err := spec.Diff(cur, next)
			if err != nil {
				t.Fatalf("step %d: Diff(cur, Apply(cur, d)) failed: %v", step, err)
			}
			next2, _, err := dd.Apply(cur)
			if err != nil {
				t.Fatalf("step %d: re-applying the Diff failed: %v", step, err)
			}
			if got, want := parse.Marshal(next2), parse.Marshal(next); got != want {
				t.Fatalf("step %d: Diff round trip diverged:\n--- Apply(d) ---\n%s\n--- Apply(Diff) ---\n%s",
					step, want, got)
			}
			cur = next
		}
	})
}
