package spec

// Delta support: incremental changes to a specification. The paper's
// setting is dynamic — tuples keep arriving, audits reveal new order
// fragments, constraints and copy functions come and go — and the engine
// (internal/osolve) can re-ground a patched specification incrementally
// instead of from scratch. Delta is the change vocabulary every layer of
// that pipeline shares: the wire format (internal/api) maps onto it, the
// solver consumes it to decide which blocks are touched, and Diff
// recovers a Delta from two specification snapshots.

import (
	"fmt"
	"sort"

	"currency/internal/copyfn"
	"currency/internal/dc"
	"currency/internal/order"
	"currency/internal/relation"
)

// TupleInsert appends one tuple to a relation.
type TupleInsert struct {
	Rel   string
	Label string // optional display label
	Tuple relation.Tuple
}

// TupleDelete removes one tuple, addressed by its index in the PRE-delta
// instance. Order pairs and copy-function mappings referencing the tuple
// are dropped; indices of later tuples shift down.
type TupleDelete struct {
	Rel   string
	Index int
}

// OrderAdd reveals one currency-order pair i ≺ j. Indices address the
// POST-delta instance (after deletes and inserts), so freshly inserted
// tuples can be ordered in the same delta.
type OrderAdd struct {
	Rel  string
	Attr string
	I, J int
}

// Delta is one incremental change set. Apply performs the pieces in a
// fixed order: tuple deletes (pre-delta indices), tuple inserts
// (appended), order adds (post-delta indices), constraint drops, adds,
// copy-function drops, adds. Added copy functions reference post-delta
// tuple indices.
type Delta struct {
	Deletes         []TupleDelete
	Inserts         []TupleInsert
	Orders          []OrderAdd
	DropConstraints []string // by name
	AddConstraints  []*dc.Constraint
	DropCopies      []string // by name
	AddCopies       []*copyfn.CopyFunction
}

// Empty reports whether the delta changes nothing.
func (d *Delta) Empty() bool {
	return len(d.Deletes) == 0 && len(d.Inserts) == 0 && len(d.Orders) == 0 &&
		len(d.DropConstraints) == 0 && len(d.AddConstraints) == 0 &&
		len(d.DropCopies) == 0 && len(d.AddCopies) == 0
}

// ApplyInfo reports how Apply rewired the specification, for consumers
// that patch derived structures (the solver's literal remap).
type ApplyInfo struct {
	// TupleMap maps, per relation with deletes, each pre-delta tuple index
	// to its post-delta index (-1 = deleted). A missing entry means the
	// identity mapping (the relation had no deletes; inserts only append).
	TupleMap map[string][]int
}

// OldIndex translates a pre-delta tuple index of rel, returning -1 for
// deleted tuples.
func (in *ApplyInfo) OldIndex(rel string, i int) int {
	if in == nil || in.TupleMap == nil {
		return i
	}
	tm, ok := in.TupleMap[rel]
	if !ok {
		return i
	}
	return tm[i]
}

// Validate checks the delta against a specification without applying it:
// every referenced relation, tuple, attribute and name must resolve.
// Order-add endpoints are validated during Apply (they address the
// post-delta instance).
func (d *Delta) Validate(s *Spec) error {
	for _, td := range d.Deletes {
		r, ok := s.Relation(td.Rel)
		if !ok {
			return fmt.Errorf("spec: delta deletes from unknown relation %s", td.Rel)
		}
		if td.Index < 0 || td.Index >= r.Len() {
			return fmt.Errorf("spec: delta deletes out-of-range tuple %d of %s", td.Index, td.Rel)
		}
	}
	for _, ti := range d.Inserts {
		r, ok := s.Relation(ti.Rel)
		if !ok {
			return fmt.Errorf("spec: delta inserts into unknown relation %s", ti.Rel)
		}
		if len(ti.Tuple) != r.Schema.Arity() {
			return fmt.Errorf("spec: delta insert arity %d does not match %s arity %d",
				len(ti.Tuple), ti.Rel, r.Schema.Arity())
		}
	}
	for _, oa := range d.Orders {
		r, ok := s.Relation(oa.Rel)
		if !ok {
			return fmt.Errorf("spec: delta orders unknown relation %s", oa.Rel)
		}
		if _, ok := r.Schema.AttrIndex(oa.Attr); !ok {
			return fmt.Errorf("spec: delta orders unknown attribute %s.%s", oa.Rel, oa.Attr)
		}
	}
	names := make(map[string]bool, len(s.Constraints))
	for _, c := range s.Constraints {
		names[c.Name] = true
	}
	for _, n := range d.DropConstraints {
		if !names[n] {
			return fmt.Errorf("spec: delta drops unknown constraint %s", n)
		}
	}
	for _, c := range d.AddConstraints {
		if _, ok := s.Relation(c.Relation); !ok {
			return fmt.Errorf("spec: delta constraint %s targets unknown relation %s", c.Name, c.Relation)
		}
	}
	cnames := make(map[string]bool, len(s.Copies))
	for _, cf := range s.Copies {
		cnames[cf.Name] = true
	}
	for _, n := range d.DropCopies {
		if !cnames[n] {
			return fmt.Errorf("spec: delta drops unknown copy function %s", n)
		}
	}
	return nil
}

// Apply returns the patched specification. It is copy-on-write: untouched
// relations, constraints and copy functions are shared by pointer with s
// (all are immutable by the library's read contract), so the original
// specification — and any solver grounded from it — stays valid for
// readers in flight. Validation is incremental: only the touched parts
// are re-checked.
func (d *Delta) Apply(s *Spec) (*Spec, *ApplyInfo, error) {
	if err := d.Validate(s); err != nil {
		return nil, nil, err
	}
	out := &Spec{
		Relations:   append([]*relation.TemporalInstance(nil), s.Relations...),
		Constraints: append([]*dc.Constraint(nil), s.Constraints...),
		Copies:      append([]*copyfn.CopyFunction(nil), s.Copies...),
	}
	info := &ApplyInfo{TupleMap: make(map[string][]int)}

	// cow returns out's private copy of the named relation, shallow-cloning
	// it the first time the delta touches it: tuples are immutable once
	// registered (deltas append or drop whole tuples, never rewrite
	// values), so the Tuple slices are shared and only the slice headers
	// are private. Pair sets are shared per attribute until an order add
	// or delete touches them (cowOrders).
	cowed := make(map[string]bool)
	cow := func(name string) *relation.TemporalInstance {
		for i, r := range out.Relations {
			if r.Schema.Name != name {
				continue
			}
			if !cowed[name] {
				nr := &relation.TemporalInstance{
					Instance: &relation.Instance{
						Schema: r.Schema,
						Tuples: append([]relation.Tuple(nil), r.Tuples...),
						Labels: append([]string(nil), r.Labels...),
					},
					Orders: append([]*order.PairSet(nil), r.Orders...),
				}
				out.Relations[i] = nr
				cowed[name] = true
			}
			return out.Relations[i]
		}
		return nil
	}
	// cowOrders gives the relation a private pair set for attribute ai.
	cowedOrders := make(map[string]map[int]bool)
	cowOrders := func(name string, ai int) {
		r := cow(name)
		if cowedOrders[name] == nil {
			cowedOrders[name] = make(map[int]bool)
		}
		if !cowedOrders[name][ai] {
			if r.Orders[ai] != nil {
				r.Orders[ai] = r.Orders[ai].Clone()
			}
			cowedOrders[name][ai] = true
		}
	}

	// Deletes first, grouped per relation so the index remap is computed
	// once. Duplicate deletes of the same index are rejected.
	delByRel := make(map[string][]int)
	for _, td := range d.Deletes {
		delByRel[td.Rel] = append(delByRel[td.Rel], td.Index)
	}
	for rel, idxs := range delByRel {
		sort.Ints(idxs)
		for k := 1; k < len(idxs); k++ {
			if idxs[k] == idxs[k-1] {
				return nil, nil, fmt.Errorf("spec: delta deletes tuple %d of %s twice", idxs[k], rel)
			}
		}
		r := cow(rel)
		tm := make([]int, r.Len())
		gone := make(map[int]bool, len(idxs))
		for _, i := range idxs {
			gone[i] = true
		}
		next := 0
		newTuples := make([]relation.Tuple, 0, r.Len()-len(idxs))
		newLabels := make([]string, 0, r.Len()-len(idxs))
		for i := range r.Tuples {
			if gone[i] {
				tm[i] = -1
				continue
			}
			tm[i] = next
			next++
			newTuples = append(newTuples, r.Tuples[i])
			newLabels = append(newLabels, r.Labels[i])
		}
		r.Tuples, r.Labels = newTuples, newLabels
		info.TupleMap[rel] = tm
		// Remap the currency orders, dropping pairs on deleted tuples.
		// The rebuilt sets are private by construction.
		if cowedOrders[rel] == nil {
			cowedOrders[rel] = make(map[int]bool)
		}
		for ai, ps := range r.Orders {
			if ps == nil {
				continue
			}
			np := order.NewPairSet()
			// Range walks the adjacency index directly — no materialized,
			// sorted pair slice per attribute, which made delete-heavy
			// deltas pay O(pairs log pairs) per block here.
			ps.Range(func(a, b int) bool {
				if tm[a] >= 0 && tm[b] >= 0 {
					np.Add(tm[a], tm[b])
				}
				return true
			})
			r.Orders[ai] = np
			cowedOrders[rel][ai] = true
		}
	}
	// Remap copy functions over relations with deletes, dropping mapping
	// entries whose endpoint is gone. Entry drops change the compat rules,
	// which the solver detects through the tuple map.
	for i, cf := range out.Copies {
		tmT, okT := info.TupleMap[cf.Target]
		tmS, okS := info.TupleMap[cf.Source]
		if !okT && !okS {
			continue
		}
		nc := copyfn.New(cf.Name, cf.Target, cf.Source, cf.TargetAttrs, cf.SourceAttrs)
		for t, sv := range cf.Mapping {
			nt, ns := t, sv
			if okT {
				nt = tmT[t]
			}
			if okS {
				ns = tmS[sv]
			}
			if nt >= 0 && ns >= 0 {
				nc.Set(nt, ns)
			}
		}
		out.Copies[i] = nc
	}

	// Inserts append; pre-delta indices are unaffected.
	for _, ti := range d.Inserts {
		r := cow(ti.Rel)
		if _, err := r.AddLabeled(ti.Label, ti.Tuple); err != nil {
			return nil, nil, err
		}
	}

	// Order adds address the post-delta instance. AddOrder validates
	// range, entity agreement and irreflexivity; acyclicity is re-checked
	// below for exactly the (attribute, entity) groups that gained pairs —
	// not the whole relation, which would put an O(entities × pairs)
	// sweep on the incremental path.
	type orderTouch struct {
		rel string
		ai  int
		eid relation.Value
	}
	touched := make(map[orderTouch]bool)
	for _, oa := range d.Orders {
		r := cow(oa.Rel)
		ai, ok := r.Schema.AttrIndex(oa.Attr)
		if !ok {
			return nil, nil, fmt.Errorf("spec: delta orders unknown attribute %s.%s", oa.Rel, oa.Attr)
		}
		cowOrders(oa.Rel, ai)
		if err := r.AddOrder(oa.Attr, oa.I, oa.J); err != nil {
			return nil, nil, err
		}
		touched[orderTouch{oa.Rel, ai, r.EID(oa.I)}] = true
	}
	for ot := range touched {
		r, _ := out.Relation(ot.rel)
		var members []int
		for i := range r.Tuples {
			if r.EID(i) == ot.eid {
				members = append(members, i)
			}
		}
		if cyclicOn(r.Orders[ot.ai], members) {
			return nil, nil, fmt.Errorf("spec: delta on %s.%s entity %s: order contains a cycle",
				ot.rel, r.Schema.Attrs[ot.ai], ot.eid)
		}
	}

	// Constraint drops, then adds (a drop+add pair of the same name is a
	// replacement).
	if len(d.DropConstraints) > 0 {
		drop := make(map[string]bool, len(d.DropConstraints))
		for _, n := range d.DropConstraints {
			drop[n] = true
		}
		kept := out.Constraints[:0:0]
		for _, c := range out.Constraints {
			if !drop[c.Name] {
				kept = append(kept, c)
			}
		}
		out.Constraints = kept
	}
	for _, c := range d.AddConstraints {
		for _, have := range out.Constraints {
			if have.Name == c.Name {
				return nil, nil, fmt.Errorf("spec: delta adds duplicate constraint %s (drop it first)", c.Name)
			}
		}
		if err := out.AddConstraint(c); err != nil {
			return nil, nil, err
		}
	}

	// Copy drops, then adds.
	if len(d.DropCopies) > 0 {
		drop := make(map[string]bool, len(d.DropCopies))
		for _, n := range d.DropCopies {
			drop[n] = true
		}
		kept := out.Copies[:0:0]
		for _, cf := range out.Copies {
			if !drop[cf.Name] {
				kept = append(kept, cf)
			}
		}
		out.Copies = kept
	}
	for _, cf := range d.AddCopies {
		for _, have := range out.Copies {
			if have.Name == cf.Name {
				return nil, nil, fmt.Errorf("spec: delta adds duplicate copy function %s (drop it first)", cf.Name)
			}
		}
		if err := out.AddCopy(cf); err != nil {
			return nil, nil, err
		}
	}
	return out, info, nil
}

// Diff computes a Delta turning old into new, for callers that snapshot
// specifications and want the incremental path: Apply(Diff(old, new), old)
// reproduces new up to canonical form. Relations must agree by name and
// schema; each new tuple sequence must be a subsequence of the old one
// followed by appended tuples (the shape Apply produces); removed order
// pairs are not expressible and are reported as errors. Constraints and
// copy functions are matched by name; a changed definition becomes a
// drop+add pair.
func Diff(old, new *Spec) (*Delta, error) {
	d := &Delta{}
	if len(old.Relations) != len(new.Relations) {
		return nil, fmt.Errorf("spec: diff cannot add or remove relations")
	}
	for i, or := range old.Relations {
		nr := new.Relations[i]
		if or.Schema.Name != nr.Schema.Name || or.Schema.Arity() != nr.Schema.Arity() {
			return nil, fmt.Errorf("spec: diff schema mismatch at relation %d (%s vs %s)",
				i, or.Schema.Name, nr.Schema.Name)
		}
		// Greedy subsequence match: old tuples either survive in order or
		// were deleted; trailing new tuples are inserts.
		tm := make([]int, or.Len())
		ni := 0
		for oi := range or.Tuples {
			if ni < nr.Len() && or.Tuples[oi].Equal(nr.Tuples[ni]) {
				tm[oi] = ni
				ni++
			} else {
				tm[oi] = -1
				d.Deletes = append(d.Deletes, TupleDelete{Rel: or.Schema.Name, Index: oi})
			}
		}
		for ; ni < nr.Len(); ni++ {
			d.Inserts = append(d.Inserts, TupleInsert{
				Rel:   or.Schema.Name,
				Label: nr.Labels[ni],
				Tuple: nr.Tuples[ni],
			})
		}
		for _, ai := range or.Schema.NonEIDIndexes() {
			ops, nps := or.Orders[ai], nr.Orders[ai]
			for _, p := range opsPairs(ops) {
				if tm[p.A] < 0 || tm[p.B] < 0 {
					continue // pair died with its tuple
				}
				if nps == nil || !nps.Has(tm[p.A], tm[p.B]) {
					return nil, fmt.Errorf("spec: diff of %s.%s removes order pair (%d,%d); deltas only add orders",
						or.Schema.Name, or.Schema.Attrs[ai], p.A, p.B)
				}
			}
			inv := make(map[int]int, nr.Len()) // new index -> old index
			for oi, niIdx := range tm {
				if niIdx >= 0 {
					inv[niIdx] = oi
				}
			}
			for _, p := range opsPairs(nps) {
				oa, aOld := inv[p.A]
				ob, bOld := inv[p.B]
				if aOld && bOld && ops != nil && ops.Has(oa, ob) {
					continue
				}
				d.Orders = append(d.Orders, OrderAdd{
					Rel: or.Schema.Name, Attr: or.Schema.Attrs[ai], I: p.A, J: p.B,
				})
			}
		}
	}
	oldC := make(map[string]*dc.Constraint, len(old.Constraints))
	for _, c := range old.Constraints {
		oldC[c.Name] = c
	}
	newC := make(map[string]bool, len(new.Constraints))
	for _, c := range new.Constraints {
		newC[c.Name] = true
		if have, ok := oldC[c.Name]; !ok {
			d.AddConstraints = append(d.AddConstraints, c)
		} else if have.String() != c.String() {
			d.DropConstraints = append(d.DropConstraints, c.Name)
			d.AddConstraints = append(d.AddConstraints, c)
		}
	}
	for _, c := range old.Constraints {
		if !newC[c.Name] {
			d.DropConstraints = append(d.DropConstraints, c.Name)
		}
	}
	oldCf := make(map[string]*copyfn.CopyFunction, len(old.Copies))
	for _, cf := range old.Copies {
		oldCf[cf.Name] = cf
	}
	newCf := make(map[string]bool, len(new.Copies))
	for _, cf := range new.Copies {
		newCf[cf.Name] = true
		if have, ok := oldCf[cf.Name]; !ok {
			d.AddCopies = append(d.AddCopies, cf)
		} else if !sameCopyUnderDiff(have, cf, d, old) {
			d.DropCopies = append(d.DropCopies, cf.Name)
			d.AddCopies = append(d.AddCopies, cf)
		}
	}
	for _, cf := range old.Copies {
		if !newCf[cf.Name] {
			d.DropCopies = append(d.DropCopies, cf.Name)
		}
	}
	return d, nil
}

// cyclicOn reports whether the order restricted to members has a cycle
// (including self-loops), via a colour DFS over the successor lists —
// the restriction stays implicit, so the check costs O(edges among
// members), not O(all pairs) like PairSet.Restrict.
func cyclicOn(ps *order.PairSet, members []int) bool {
	if ps == nil {
		return false
	}
	in := make(map[int]bool, len(members))
	for _, m := range members {
		in[m] = true
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make(map[int]int, len(members))
	var visit func(n int) bool
	visit = func(n int) bool {
		colour[n] = grey
		for _, m := range ps.Succ(n) {
			if !in[m] || m == n {
				if m == n {
					return true
				}
				continue
			}
			switch colour[m] {
			case grey:
				return true
			case white:
				if visit(m) {
					return true
				}
			}
		}
		colour[n] = black
		return false
	}
	for _, m := range members {
		if colour[m] == white && visit(m) {
			return true
		}
	}
	return false
}

// delOf collects the deletes of one relation accumulated so far.
func delOf(d *Delta, rel string) []int {
	var out []int
	for _, td := range d.Deletes {
		if td.Rel == rel {
			out = append(out, td.Index)
		}
	}
	return out
}

// opsPairs is Pairs() tolerating a nil set.
func opsPairs(ps *order.PairSet) []order.Pair {
	if ps == nil {
		return nil
	}
	return ps.Pairs()
}

// sameCopyUnderDiff reports whether the new copy function equals the old
// one after the diff's tuple remapping (Apply performs that remapping
// itself, so such copies need no drop+add).
func sameCopyUnderDiff(oldCf, newCf *copyfn.CopyFunction, d *Delta, old *Spec) bool {
	if oldCf.Target != newCf.Target || oldCf.Source != newCf.Source ||
		fmt.Sprint(oldCf.TargetAttrs) != fmt.Sprint(newCf.TargetAttrs) ||
		fmt.Sprint(oldCf.SourceAttrs) != fmt.Sprint(newCf.SourceAttrs) {
		return false
	}
	tm := diffTupleMap(d, old, oldCf.Target)
	sm := diffTupleMap(d, old, oldCf.Source)
	want := make(map[int]int, len(oldCf.Mapping))
	for t, s := range oldCf.Mapping {
		nt, ns := t, s
		if tm != nil {
			nt = tm[t]
		}
		if sm != nil {
			ns = sm[s]
		}
		if nt >= 0 && ns >= 0 {
			want[nt] = ns
		}
	}
	if len(want) != len(newCf.Mapping) {
		return false
	}
	for t, s := range newCf.Mapping {
		if ws, ok := want[t]; !ok || ws != s {
			return false
		}
	}
	return true
}

// diffTupleMap reconstructs the old→new index map the diff's deletes of
// rel imply (nil = identity).
func diffTupleMap(d *Delta, old *Spec, rel string) []int {
	idxs := delOf(d, rel)
	if len(idxs) == 0 {
		return nil
	}
	r, _ := old.Relation(rel)
	gone := make(map[int]bool, len(idxs))
	for _, i := range idxs {
		gone[i] = true
	}
	tm := make([]int, r.Len())
	next := 0
	for i := range tm {
		if gone[i] {
			tm[i] = -1
			continue
		}
		tm[i] = next
		next++
	}
	return tm
}
