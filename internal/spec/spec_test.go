package spec

import (
	"testing"

	"currency/internal/copyfn"
	"currency/internal/dc"
	"currency/internal/relation"
)

func smallSpec(t *testing.T) *Spec {
	t.Helper()
	s := New()
	sc := relation.MustSchema("R", "eid", "A")
	dt := relation.NewTemporal(sc)
	dt.MustAdd(relation.Tuple{relation.S("e1"), relation.I(1)})
	dt.MustAdd(relation.Tuple{relation.S("e1"), relation.I(2)})
	s.MustAddRelation(dt)

	sc2 := relation.MustSchema("S", "eid", "B")
	dt2 := relation.NewTemporal(sc2)
	dt2.MustAdd(relation.Tuple{relation.S("e1"), relation.I(1)})
	dt2.MustAdd(relation.Tuple{relation.S("e1"), relation.I(2)})
	dt2.MustAddOrder("B", 0, 1)
	s.MustAddRelation(dt2)
	return s
}

func TestSpecValidation(t *testing.T) {
	s := smallSpec(t)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Duplicate relation name rejected.
	dup := relation.NewTemporal(relation.MustSchema("R", "eid", "X"))
	if err := s.AddRelation(dup); err == nil {
		t.Error("duplicate relation accepted")
	}
	// Constraint on unknown relation rejected.
	if err := s.AddConstraint(&dc.Constraint{
		Name: "c", Relation: "Nope", Vars: []string{"s", "t"},
		Head: dc.OrderAtom{U: "s", V: "t", Attr: "A"},
	}); err == nil {
		t.Error("constraint on unknown relation accepted")
	}
	// Copy function referencing unknown relations rejected.
	if err := s.AddCopy(copyfn.New("x", "Nope", "R", []string{"A"}, []string{"A"})); err == nil {
		t.Error("copy onto unknown relation accepted")
	}
	// Valid copy: rewrite R's tuple 0 so values match S's tuple 0.
	cf := copyfn.New("rho", "R", "S", []string{"A"}, []string{"B"})
	cf.Set(0, 0)
	if err := s.AddCopy(cf); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConstraintsFor(t *testing.T) {
	s := smallSpec(t)
	s.MustAddConstraint(&dc.Constraint{
		Name: "mono", Relation: "R", Vars: []string{"s", "t"},
		Cmps: []dc.Comparison{{L: dc.AttrOp("s", "A"), Op: dc.OpGt, R: dc.AttrOp("t", "A")}},
		Head: dc.OrderAtom{U: "t", V: "s", Attr: "A"},
	})
	if got := len(s.ConstraintsFor("R")); got != 1 {
		t.Errorf("ConstraintsFor(R) = %d", got)
	}
	if got := len(s.ConstraintsFor("S")); got != 0 {
		t.Errorf("ConstraintsFor(S) = %d", got)
	}
}

func TestEnumerateModels(t *testing.T) {
	s := smallSpec(t)
	// R's entity pair unordered (2 completions), S fixed by base order.
	n, err := s.CountModels(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("CountModels = %d, want 2", n)
	}
	// Adding the monotone constraint on R pins its order: 1 model.
	s.MustAddConstraint(&dc.Constraint{
		Name: "mono", Relation: "R", Vars: []string{"s", "t"},
		Cmps: []dc.Comparison{{L: dc.AttrOp("s", "A"), Op: dc.OpGt, R: dc.AttrOp("t", "A")}},
		Head: dc.OrderAtom{U: "t", V: "s", Attr: "A"},
	})
	n, err = s.CountModels(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("CountModels with constraint = %d, want 1", n)
	}
	ok, err := s.ConsistentBruteForce()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("consistent spec reported inconsistent")
	}
}

func TestCompatFiltersModels(t *testing.T) {
	s := smallSpec(t)
	// Copy R's both tuples from S's with identical values: R tuple i gets
	// S tuple i's value, so orders must mirror. S is fixed 0≺1; R then
	// must order 0≺1 as well: exactly 1 model.
	r, _ := s.Relation("R")
	src, _ := s.Relation("S")
	r.Tuples[0][1] = src.Tuples[0][1]
	r.Tuples[1][1] = src.Tuples[1][1]
	cf := copyfn.New("rho", "R", "S", []string{"A"}, []string{"B"})
	cf.Set(0, 0)
	cf.Set(1, 1)
	s.MustAddCopy(cf)
	n, err := s.CountModels(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("CountModels with copy = %d, want 1", n)
	}
	// Contradicting the source order makes the specification
	// inconsistent.
	r.MustAddOrder("A", 1, 0)
	ok, err := s.ConsistentBruteForce()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("contradicting copy order accepted")
	}
}

func TestModelCurrentDB(t *testing.T) {
	s := smallSpec(t)
	var model Model
	if err := s.EnumerateModels(func(m Model) bool {
		model = m
		return false
	}); err != nil {
		t.Fatal(err)
	}
	db := model.CurrentDB()
	if len(db) != 2 || db["R"].Len() != 1 || db["S"].Len() != 1 {
		t.Fatalf("CurrentDB = %v", db)
	}
	// S's current value is forced by its base order.
	if db["S"].Tuples[0][1] != relation.I(2) {
		t.Errorf("current S value = %v, want 2", db["S"].Tuples[0][1])
	}
}

func TestClone(t *testing.T) {
	s := smallSpec(t)
	c := s.Clone()
	r, _ := c.Relation("R")
	r.Tuples[0][1] = relation.I(99)
	orig, _ := s.Relation("R")
	if orig.Tuples[0][1] == relation.I(99) {
		t.Error("Clone shares tuple storage")
	}
}
