// Package spec assembles specifications of data currency: collections of
// temporal instances, denial constraints per relation, and copy functions
// between relations (Section 2 of the paper). It also provides a
// brute-force enumeration of the consistent completions Mod(S), used as a
// test oracle for the exact solver.
package spec

import (
	"fmt"

	"currency/internal/copyfn"
	"currency/internal/dc"
	"currency/internal/relation"
)

// Spec is a specification S of data currency.
type Spec struct {
	// Relations holds the temporal instances, each with a unique schema
	// name. Order is significant only for deterministic output.
	Relations []*relation.TemporalInstance
	// Constraints are denial constraints; each names the relation it
	// constrains.
	Constraints []*dc.Constraint
	// Copies are copy functions between relations in this specification.
	Copies []*copyfn.CopyFunction
}

// New returns an empty specification.
func New() *Spec { return &Spec{} }

// AddRelation registers a temporal instance.
func (s *Spec) AddRelation(dt *relation.TemporalInstance) error {
	if _, ok := s.Relation(dt.Schema.Name); ok {
		return fmt.Errorf("spec: duplicate relation %s", dt.Schema.Name)
	}
	s.Relations = append(s.Relations, dt)
	return nil
}

// MustAddRelation panics on error; for tests and fixtures.
func (s *Spec) MustAddRelation(dt *relation.TemporalInstance) {
	if err := s.AddRelation(dt); err != nil {
		panic(err)
	}
}

// Relation finds a temporal instance by name.
func (s *Spec) Relation(name string) (*relation.TemporalInstance, bool) {
	for _, r := range s.Relations {
		if r.Schema.Name == name {
			return r, true
		}
	}
	return nil, false
}

// AddConstraint registers a denial constraint after validating it against
// its relation's schema.
func (s *Spec) AddConstraint(c *dc.Constraint) error {
	r, ok := s.Relation(c.Relation)
	if !ok {
		return fmt.Errorf("spec: constraint %s targets unknown relation %s", c.Name, c.Relation)
	}
	if err := c.Validate(r.Schema); err != nil {
		return err
	}
	s.Constraints = append(s.Constraints, c)
	return nil
}

// MustAddConstraint panics on error; for tests and fixtures.
func (s *Spec) MustAddConstraint(c *dc.Constraint) {
	if err := s.AddConstraint(c); err != nil {
		panic(err)
	}
}

// AddCopy registers a copy function after validating the copying condition.
func (s *Spec) AddCopy(cf *copyfn.CopyFunction) error {
	tgt, ok := s.Relation(cf.Target)
	if !ok {
		return fmt.Errorf("spec: copy %s targets unknown relation %s", cf.Name, cf.Target)
	}
	src, ok := s.Relation(cf.Source)
	if !ok {
		return fmt.Errorf("spec: copy %s reads unknown relation %s", cf.Name, cf.Source)
	}
	if err := cf.Validate(tgt, src); err != nil {
		return err
	}
	s.Copies = append(s.Copies, cf)
	return nil
}

// MustAddCopy panics on error; for tests and fixtures.
func (s *Spec) MustAddCopy(cf *copyfn.CopyFunction) {
	if err := s.AddCopy(cf); err != nil {
		panic(err)
	}
}

// ConstraintsFor returns the denial constraints on the named relation.
func (s *Spec) ConstraintsFor(name string) []*dc.Constraint {
	var out []*dc.Constraint
	for _, c := range s.Constraints {
		if c.Relation == name {
			out = append(out, c)
		}
	}
	return out
}

// Validate checks the whole specification: instance partial orders are
// strict partial orders, constraints are well formed, and copy functions
// satisfy the copying condition.
func (s *Spec) Validate() error {
	seen := make(map[string]bool)
	for _, r := range s.Relations {
		if seen[r.Schema.Name] {
			return fmt.Errorf("spec: duplicate relation %s", r.Schema.Name)
		}
		seen[r.Schema.Name] = true
		if err := r.Validate(); err != nil {
			return err
		}
	}
	for _, c := range s.Constraints {
		r, ok := s.Relation(c.Relation)
		if !ok {
			return fmt.Errorf("spec: constraint %s targets unknown relation %s", c.Name, c.Relation)
		}
		if err := c.Validate(r.Schema); err != nil {
			return err
		}
	}
	for _, cf := range s.Copies {
		tgt, ok := s.Relation(cf.Target)
		if !ok {
			return fmt.Errorf("spec: copy %s targets unknown relation %s", cf.Name, cf.Target)
		}
		src, ok := s.Relation(cf.Source)
		if !ok {
			return fmt.Errorf("spec: copy %s reads unknown relation %s", cf.Name, cf.Source)
		}
		if err := cf.Validate(tgt, src); err != nil {
			return err
		}
	}
	return nil
}

// Clone deep-copies the specification.
func (s *Spec) Clone() *Spec {
	out := New()
	for _, r := range s.Relations {
		out.Relations = append(out.Relations, r.Clone())
	}
	out.Constraints = append(out.Constraints, s.Constraints...)
	for _, cf := range s.Copies {
		out.Copies = append(out.Copies, cf.Clone())
	}
	return out
}

// Model is one element of Mod(S): a consistent completion per relation,
// keyed by relation name.
type Model map[string]*relation.Completion

// CurrentDB returns the current instances LST(Dc) of the model, keyed by
// relation name.
func (m Model) CurrentDB() map[string]*relation.Instance {
	out := make(map[string]*relation.Instance, len(m))
	for name, comp := range m {
		out[name] = comp.CurrentInstance()
	}
	return out
}

// EnumerateModels enumerates Mod(S) by brute force: the Cartesian product
// of per-relation completions, filtered by denial constraints and
// ≺-compatibility of copy functions. yield returning false stops early.
// Exponential; this is the differential-testing oracle, not the production
// path (see internal/osolve and internal/core for that).
func (s *Spec) EnumerateModels(yield func(Model) bool) error {
	if err := s.Validate(); err != nil {
		return err
	}
	model := make(Model, len(s.Relations))
	var rec func(i int) (bool, error)
	rec = func(i int) (bool, error) {
		if i == len(s.Relations) {
			for _, cf := range s.Copies {
				ok, err := cf.Compatible(model[cf.Target], model[cf.Source])
				if err != nil {
					return false, err
				}
				if !ok {
					return true, nil
				}
			}
			return yield(cloneModel(model)), nil
		}
		r := s.Relations[i]
		cs := s.ConstraintsFor(r.Schema.Name)
		var stop bool
		var outerErr error
		relation.EnumerateCompletions(r, func(comp *relation.Completion) bool {
			ok, err := dc.AllSatisfied(cs, comp)
			if err != nil {
				outerErr = err
				return false
			}
			if !ok {
				return true
			}
			model[r.Schema.Name] = comp
			cont, err := rec(i + 1)
			if err != nil {
				outerErr = err
				return false
			}
			if !cont {
				stop = true
				return false
			}
			return true
		})
		if outerErr != nil {
			return false, outerErr
		}
		return !stop, nil
	}
	_, err := rec(0)
	return err
}

func cloneModel(m Model) Model {
	out := make(Model, len(m))
	for k, v := range m {
		// Completions are immutable once yielded except for the shared Rank
		// backing arrays, which the enumerator mutates; deep-copy ranks.
		c := relation.NewCompletion(v.Base)
		for ai := range v.Rank {
			if v.Rank[ai] != nil {
				copy(c.Rank[ai], v.Rank[ai])
			}
		}
		out[k] = c
	}
	return out
}

// Consistent reports whether Mod(S) is non-empty, by brute force.
func (s *Spec) ConsistentBruteForce() (bool, error) {
	found := false
	err := s.EnumerateModels(func(Model) bool {
		found = true
		return false
	})
	return found, err
}

// CountModels counts |Mod(S)| by brute force, up to limit (0 = unlimited).
func (s *Spec) CountModels(limit int) (int, error) {
	n := 0
	err := s.EnumerateModels(func(Model) bool {
		n++
		return limit == 0 || n < limit
	})
	return n, err
}
