package spec

import (
	"strings"
	"testing"

	"currency/internal/copyfn"
	"currency/internal/dc"
	"currency/internal/relation"
)

// liveSpec builds a two-relation spec with orders, a constraint and a
// copy function, for delta tests.
func liveSpec(t *testing.T) *Spec {
	t.Helper()
	s := New()
	r := relation.NewTemporal(relation.MustSchema("R", "eid", "a"))
	r.MustAdd(relation.Tuple{relation.S("e"), relation.I(1)})
	r.MustAdd(relation.Tuple{relation.S("e"), relation.I(2)})
	r.MustAdd(relation.Tuple{relation.S("f"), relation.I(3)})
	r.MustAdd(relation.Tuple{relation.S("f"), relation.I(4)})
	r.MustAddOrder("a", 0, 1)
	r.MustAddOrder("a", 2, 3)
	s.MustAddRelation(r)
	f := relation.NewTemporal(relation.MustSchema("F", "eid", "a"))
	f.MustAdd(relation.Tuple{relation.S("e"), relation.I(2)})
	f.MustAdd(relation.Tuple{relation.S("e"), relation.I(5)})
	s.MustAddRelation(f)
	s.MustAddConstraint(&dc.Constraint{
		Name: "mono", Relation: "R", Vars: []string{"s", "t"},
		Cmps: []dc.Comparison{{L: dc.AttrOp("s", "a"), Op: dc.OpGt, R: dc.AttrOp("t", "a")}},
		Head: dc.OrderAtom{U: "t", V: "s", Attr: "a"},
	})
	cf := copyfn.New("rho", "R", "F", []string{"a"}, []string{"a"})
	cf.Set(1, 0) // R#1 (a=2) imported from F#0 (a=2)
	s.MustAddCopy(cf)
	return s
}

func TestDeltaApplyCopyOnWrite(t *testing.T) {
	s := liveSpec(t)
	d := &Delta{Inserts: []TupleInsert{{Rel: "R", Tuple: relation.Tuple{relation.S("e"), relation.I(9)}}}}
	out, info, err := d.Apply(s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Relations[0] == s.Relations[0] {
		t.Fatal("touched relation must be cloned")
	}
	if out.Relations[1] != s.Relations[1] {
		t.Fatal("untouched relation must be shared by pointer")
	}
	if out.Constraints[0] != s.Constraints[0] || out.Copies[0] != s.Copies[0] {
		t.Fatal("untouched constraints and copies must be shared by pointer")
	}
	if s.Relations[0].Len() != 4 || out.Relations[0].Len() != 5 {
		t.Fatalf("lengths: old %d new %d, want 4/5", s.Relations[0].Len(), out.Relations[0].Len())
	}
	if info.OldIndex("R", 2) != 2 {
		t.Fatal("insert-only deltas keep old indices")
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaApplyDeleteRemapsEverything(t *testing.T) {
	s := liveSpec(t)
	// Delete R#1 — the tuple the order 0<1 and the copy mapping reference.
	d := &Delta{
		Deletes: []TupleDelete{{Rel: "R", Index: 1}},
		Orders:  []OrderAdd{{Rel: "R", Attr: "a", I: 1, J: 2}}, // post-delta: old #2 < old #3
	}
	out, info, err := d.Apply(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Relations[0].Len(); got != 3 {
		t.Fatalf("length %d, want 3", got)
	}
	if info.OldIndex("R", 1) != -1 || info.OldIndex("R", 3) != 2 {
		t.Fatalf("tuple map wrong: %v", info.TupleMap["R"])
	}
	ps := out.Relations[0].Orders[1]
	if ps.Has(0, 1) {
		t.Fatal("order pair referencing the deleted tuple must be dropped")
	}
	if !ps.Has(1, 2) {
		t.Fatal("surviving order pair must be remapped to (1,2)")
	}
	if out.Copies[0].Len() != 0 {
		t.Fatalf("copy mapping referencing the deleted tuple must be dropped, have %v", out.Copies[0].Mapping)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// The original is untouched.
	if s.Relations[0].Len() != 4 || s.Copies[0].Len() != 1 {
		t.Fatal("Apply mutated the base specification")
	}
}

func TestDeltaApplyConstraintAndCopyChurn(t *testing.T) {
	s := liveSpec(t)
	d := &Delta{
		DropConstraints: []string{"mono"},
		AddConstraints: []*dc.Constraint{{
			Name: "corr", Relation: "R", Vars: []string{"s", "t"},
			Orders: []dc.OrderAtom{{U: "t", V: "s", Attr: "a"}},
			Head:   dc.OrderAtom{U: "t", V: "s", Attr: "a"},
		}},
		DropCopies: []string{"rho"},
	}
	out, _, err := d.Apply(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Constraints) != 1 || out.Constraints[0].Name != "corr" {
		t.Fatalf("constraints: %v", out.Constraints)
	}
	if len(out.Copies) != 0 {
		t.Fatalf("copies: %v", out.Copies)
	}
	// Dropping an unknown name fails validation.
	bad := &Delta{DropConstraints: []string{"nope"}}
	if _, _, err := bad.Apply(s); err == nil {
		t.Fatal("dropping an unknown constraint must fail")
	}
	// Adding a duplicate name without dropping fails.
	dup := &Delta{AddConstraints: []*dc.Constraint{s.Constraints[0]}}
	if _, _, err := dup.Apply(s); err == nil {
		t.Fatal("adding a duplicate constraint must fail")
	}
}

func TestDeltaApplyRejectsCycles(t *testing.T) {
	s := liveSpec(t)
	d := &Delta{Orders: []OrderAdd{{Rel: "R", Attr: "a", I: 1, J: 0}}}
	if _, _, err := d.Apply(s); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cyclic order add: got %v, want cycle error", err)
	}
}

func TestDiffRoundTrip(t *testing.T) {
	s := liveSpec(t)
	d := &Delta{
		Deletes: []TupleDelete{{Rel: "R", Index: 2}},
		Inserts: []TupleInsert{{Rel: "F", Tuple: relation.Tuple{relation.S("e"), relation.I(7)}}},
		Orders:  []OrderAdd{{Rel: "F", Attr: "a", I: 0, J: 2}},
		AddConstraints: []*dc.Constraint{{
			Name: "corr", Relation: "F", Vars: []string{"s", "t"},
			Orders: []dc.OrderAtom{{U: "t", V: "s", Attr: "a"}},
			Head:   dc.OrderAtom{U: "t", V: "s", Attr: "a"},
		}},
	}
	want, _, err := d.Apply(s)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Diff(s, want)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := rec.Apply(s)
	if err != nil {
		t.Fatal(err)
	}
	// Structural equality: relations tuple-by-tuple, orders, names.
	for i := range want.Relations {
		if !want.Relations[i].Instance.Equal(got.Relations[i].Instance) {
			t.Fatalf("relation %d differs after diff round-trip", i)
		}
		for ai := range want.Relations[i].Orders {
			w, g := want.Relations[i].Orders[ai], got.Relations[i].Orders[ai]
			if (w == nil) != (g == nil) || (w != nil && !w.Equal(g)) {
				t.Fatalf("orders of relation %d attr %d differ", i, ai)
			}
		}
	}
	if len(got.Constraints) != len(want.Constraints) || len(got.Copies) != len(want.Copies) {
		t.Fatalf("constraint/copy counts differ: %d/%d vs %d/%d",
			len(got.Constraints), len(got.Copies), len(want.Constraints), len(want.Copies))
	}
	// Removed order pairs are not expressible.
	shrunk := liveSpec(t)
	shrunk.Relations[0].Orders[1] = nil
	if _, err := Diff(s, shrunk); err == nil {
		t.Fatal("diff removing order pairs must fail")
	}
}
