// Package gen produces deterministic random workloads — specifications,
// denial constraints, copy networks and queries — for differential tests
// and for the benchmark harness that reproduces the paper's complexity
// tables as scaling experiments.
//
// Instances are generated from a hidden ground-truth timeline: each entity
// has a true chronological order of its tuples (their index order), base
// currency orders are random subsets of that timeline, and denial
// constraints are drawn from templates consistent with it. Generated
// specifications are therefore always syntactically valid, and those
// without contradictory copy orders are consistent.
package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"currency/internal/copyfn"
	"currency/internal/dc"
	"currency/internal/parse"
	"currency/internal/query"
	"currency/internal/relation"
	"currency/internal/spec"
)

// Config controls workload generation. All sizes are small integers; see
// Random for semantics.
type Config struct {
	Seed int64
	// Relations is the number of relations R0, R1, ...
	Relations int
	// Entities is the number of entities per relation.
	Entities int
	// TuplesPerEntity is the number of tuples per entity (its history
	// length).
	TuplesPerEntity int
	// Attrs is the number of non-EID attributes A0, A1, ...
	Attrs int
	// Domain is the number of distinct integer values per attribute;
	// small domains create the value collisions that make currency
	// reasoning interesting.
	Domain int
	// OrderDensity is the probability that a ground-truth pair (i before
	// j) is revealed as a base currency order.
	OrderDensity float64
	// Constraints is the number of random denial constraints.
	Constraints int
	// Copies is the number of copy functions; each imports into relation
	// R0..R{Relations-2} from the next relation, with full coverage.
	Copies int
	// CopyDensity is the fraction of target tuples that are copied.
	CopyDensity float64
}

// Default returns a small, interesting configuration.
func Default(seed int64) Config {
	return Config{
		Seed:            seed,
		Relations:       2,
		Entities:        2,
		TuplesPerEntity: 2,
		Attrs:           2,
		Domain:          3,
		OrderDensity:    0.3,
		Constraints:     2,
		Copies:          1,
		CopyDensity:     0.5,
	}
}

// Random generates a specification from the configuration. The same
// configuration always yields the same specification.
func Random(cfg Config) *spec.Spec {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := spec.New()

	attrs := make([]string, cfg.Attrs+1)
	attrs[0] = "eid"
	for a := 0; a < cfg.Attrs; a++ {
		attrs[a+1] = fmt.Sprintf("A%d", a)
	}

	// Relations with ground-truth timelines: tuple order within an entity
	// is its chronological order.
	for ri := 0; ri < cfg.Relations; ri++ {
		sc := relation.MustSchema(fmt.Sprintf("R%d", ri), attrs...)
		dt := relation.NewTemporal(sc)
		for e := 0; e < cfg.Entities; e++ {
			for k := 0; k < cfg.TuplesPerEntity; k++ {
				t := make(relation.Tuple, sc.Arity())
				t[0] = relation.S(fmt.Sprintf("e%d", e))
				for a := 0; a < cfg.Attrs; a++ {
					t[a+1] = relation.I(int64(rng.Intn(cfg.Domain)))
				}
				dt.MustAdd(t)
			}
		}
		// Reveal random ground-truth pairs as base orders.
		for _, g := range dt.Entities() {
			for ai := 1; ai <= cfg.Attrs; ai++ {
				for x := 0; x < len(g.Members); x++ {
					for y := x + 1; y < len(g.Members); y++ {
						if rng.Float64() < cfg.OrderDensity {
							if err := dt.AddOrderIdx(ai, g.Members[x], g.Members[y]); err != nil {
								panic(err)
							}
						}
					}
				}
			}
		}
		s.MustAddRelation(dt)
	}

	// Copy functions: R{i} imports from R{i+1}, full coverage, rewriting
	// copied target tuples so the copying condition holds. Deeper sources
	// are processed first so a chain R0 ⇐ R1 ⇐ R2 copies values that are
	// already final.
	nonEID := attrs[1:]
	usedTargets := make(map[[2]interface{}]bool) // (rel, tuple) already mapped
	var copyOrder []int
	for c := 0; c < cfg.Copies && cfg.Relations >= 2; c++ {
		copyOrder = append(copyOrder, c)
	}
	sort.Slice(copyOrder, func(a, b int) bool {
		return copyOrder[a]%(cfg.Relations-1) > copyOrder[b]%(cfg.Relations-1)
	})
	for _, c := range copyOrder {
		ti := c % (cfg.Relations - 1)
		si := ti + 1
		tgt := s.Relations[ti]
		src := s.Relations[si]
		cf := copyfn.New(fmt.Sprintf("rho%d", c), tgt.Schema.Name, src.Schema.Name, nonEID, nonEID)
		for t := 0; t < tgt.Len(); t++ {
			key := [2]interface{}{tgt.Schema.Name, t}
			if usedTargets[key] || rng.Float64() >= cfg.CopyDensity {
				continue
			}
			sTuple := rng.Intn(src.Len())
			for a := 1; a <= cfg.Attrs; a++ {
				tgt.Tuples[t][a] = src.Tuples[sTuple][a]
			}
			cf.Set(t, sTuple)
			usedTargets[key] = true
		}
		if cf.Len() > 0 {
			s.MustAddCopy(cf)
		}
	}

	// Denial constraints drawn from templates.
	for k := 0; k < cfg.Constraints; k++ {
		rel := s.Relations[rng.Intn(len(s.Relations))]
		s.MustAddConstraint(RandomConstraint(rng, rel.Schema, fmt.Sprintf("c%d", k)))
	}
	return s
}

// RandomConstraint draws a denial constraint from one of three templates:
//
//	monotone:   s.A > t.A            → t ≺A s   (ϕ1-style)
//	correlated: t ≺A s               → t ≺B s   (ϕ3-style)
//	trigger:    s.A = c1 ∧ t.A = c2  → t ≺B s   (ϕ2-style)
func RandomConstraint(rng *rand.Rand, sc *relation.Schema, name string) *dc.Constraint {
	non := sc.NonEIDIndexes()
	attr := func() string { return sc.Attrs[non[rng.Intn(len(non))]] }
	c := &dc.Constraint{Name: name, Relation: sc.Name, Vars: []string{"s", "t"}}
	switch rng.Intn(3) {
	case 0:
		a := attr()
		c.Cmps = []dc.Comparison{{L: dc.AttrOp("s", a), Op: dc.OpGt, R: dc.AttrOp("t", a)}}
		c.Head = dc.OrderAtom{U: "t", V: "s", Attr: a}
	case 1:
		c.Orders = []dc.OrderAtom{{U: "t", V: "s", Attr: attr()}}
		c.Head = dc.OrderAtom{U: "t", V: "s", Attr: attr()}
	default:
		a := attr()
		v1 := relation.I(int64(rng.Intn(3)))
		v2 := relation.I(int64(rng.Intn(3)))
		c.Cmps = []dc.Comparison{
			{L: dc.AttrOp("s", a), Op: dc.OpEq, R: dc.ConstOp(v1)},
			{L: dc.AttrOp("t", a), Op: dc.OpEq, R: dc.ConstOp(v2)},
		}
		c.Head = dc.OrderAtom{U: "t", V: "s", Attr: attr()}
	}
	return c
}

// RandomSPQuery builds a random SP query over the named relation of the
// given schema: project a random non-empty subset of attributes, with an
// optional equality selection on one attribute.
func RandomSPQuery(rng *rand.Rand, sc *relation.Schema, name string, domain int) *query.Query {
	terms := make([]query.Term, sc.Arity())
	vars := make([]string, sc.Arity())
	for i := range terms {
		vars[i] = fmt.Sprintf("x%d", i)
		terms[i] = query.V(vars[i])
	}
	non := sc.NonEIDIndexes()
	// Choose head attributes.
	var head []string
	for _, ai := range non {
		if rng.Intn(2) == 0 {
			head = append(head, vars[ai])
		}
	}
	if len(head) == 0 {
		head = append(head, vars[non[0]])
	}
	var conj []query.Formula
	conj = append(conj, query.Atom{Rel: sc.Name, Terms: terms})
	if rng.Intn(2) == 0 {
		ai := non[rng.Intn(len(non))]
		conj = append(conj, query.Cmp{
			L: query.V(vars[ai]), Op: query.CmpEq,
			R: query.C(relation.I(int64(rng.Intn(domain)))),
		})
	}
	headSet := make(map[string]bool, len(head))
	for _, h := range head {
		headSet[h] = true
	}
	var exVars []string
	for _, v := range vars {
		if !headSet[v] {
			exVars = append(exVars, v)
		}
	}
	return &query.Query{
		Name: name,
		Head: head,
		Body: query.Exists{Vars: exVars, F: query.And{Fs: conj}},
	}
}

// RandomCQQuery builds a random conjunctive query joining two relations of
// the specification on their first non-EID attribute.
func RandomCQQuery(rng *rand.Rand, s *spec.Spec, name string, domain int) *query.Query {
	r1 := s.Relations[rng.Intn(len(s.Relations))]
	r2 := s.Relations[rng.Intn(len(s.Relations))]
	mk := func(prefix string, sc *relation.Schema, joinVar string) ([]query.Term, []string) {
		terms := make([]query.Term, sc.Arity())
		var names []string
		for i := range terms {
			v := fmt.Sprintf("%s%d", prefix, i)
			if i == 1 {
				v = joinVar
			}
			terms[i] = query.V(v)
			names = append(names, v)
		}
		return terms, names
	}
	t1, n1 := mk("u", r1.Schema, "j")
	t2, n2 := mk("v", r2.Schema, "j")
	head := []string{"j"}
	seen := map[string]bool{"j": true}
	var exVars []string
	for _, v := range append(n1, n2...) {
		if !seen[v] {
			seen[v] = true
			exVars = append(exVars, v)
		}
	}
	conj := []query.Formula{
		query.Atom{Rel: r1.Schema.Name, Terms: t1},
		query.Atom{Rel: r2.Schema.Name, Terms: t2},
	}
	if rng.Intn(2) == 0 {
		conj = append(conj, query.Cmp{
			L: query.V("j"), Op: query.CmpEq,
			R: query.C(relation.I(int64(rng.Intn(domain)))),
		})
	}
	return &query.Query{
		Name: name,
		Head: head,
		Body: query.Exists{Vars: exVars, F: query.And{Fs: conj}},
	}
}

// RandomSource renders a random specification in the textual wire format
// of internal/parse — a load-test fixture generator for currencyd: the
// returned string registers directly via POST /specs.
func RandomSource(cfg Config) string {
	return parse.Marshal(Random(cfg))
}
