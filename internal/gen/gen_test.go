package gen

import (
	"math/rand"
	"testing"

	"currency/internal/query"
)

// TestRandomIsValid checks that every generated specification validates,
// across many seeds and shapes.
func TestRandomIsValid(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		cfg := Default(seed)
		cfg.Relations = 1 + int(seed%3)
		cfg.Copies = int(seed % 3)
		cfg.Constraints = int(seed % 4)
		cfg.TuplesPerEntity = 1 + int(seed%3)
		s := Random(cfg)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestRandomDeterministic checks seed-stability.
func TestRandomDeterministic(t *testing.T) {
	a := Random(Default(7))
	b := Random(Default(7))
	for i := range a.Relations {
		if !a.Relations[i].Instance.Equal(b.Relations[i].Instance) {
			t.Fatalf("relation %d differs across identical seeds", i)
		}
	}
	if len(a.Constraints) != len(b.Constraints) || len(a.Copies) != len(b.Copies) {
		t.Fatal("constraint/copy counts differ across identical seeds")
	}
}

// TestChainedCopiesRespectCopyingCondition regression-tests the ordering
// bug where R0 ⇐ R1 copied values that R1 ⇐ R2 later rewrote.
func TestChainedCopiesRespectCopyingCondition(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		cfg := Default(seed)
		cfg.Relations = 3
		cfg.Copies = 2
		cfg.CopyDensity = 0.9
		s := Random(cfg)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRandomSPQueryIsSP(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := Random(Default(1))
	for i := 0; i < 30; i++ {
		q := RandomSPQuery(rng, s.Relations[0].Schema, "Q", 3)
		if err := q.Validate(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if !query.IsSP(q) {
			t.Fatalf("iteration %d: generated query is not SP: %v", i, q)
		}
	}
}

func TestRandomCQQueryIsCQ(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := Random(Default(2))
	for i := 0; i < 30; i++ {
		q := RandomCQQuery(rng, s, "Q", 3)
		if err := q.Validate(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if c := query.Classify(q); c != query.LangCQ && c != query.LangSP {
			t.Fatalf("iteration %d: classified %v: %v", i, c, q)
		}
	}
}

func TestRandomConstraintValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := Random(Default(3))
	for i := 0; i < 50; i++ {
		c := RandomConstraint(rng, s.Relations[0].Schema, "c")
		if err := c.Validate(s.Relations[0].Schema); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}
