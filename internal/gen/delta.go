package gen

// Random delta streams — the workload of the incremental re-grounding
// path (osolve.ApplyDelta, PATCH /specs/{id}): a base specification plus
// a sequence of small changes. Deltas are drawn to keep the base orders
// acyclic (pairs follow the ground-truth timeline, with inserted tuples
// as the newest), but constraints can still render a patched
// specification inconsistent — both outcomes are wanted by the
// differential tests.

import (
	"fmt"
	"math/rand"

	"currency/internal/api"
	"currency/internal/copyfn"
	"currency/internal/parse"
	"currency/internal/relation"
	"currency/internal/spec"
)

// DeltaConfig sizes one random delta.
type DeltaConfig struct {
	// Inserts is the number of tuple inserts; each picks a random
	// relation and, with probability NewEntity, a fresh entity.
	Inserts int
	// NewEntity is the probability an insert opens a fresh entity.
	NewEntity float64
	// Deletes is the number of tuple deletes (capped at the available
	// tuples; entities are never emptied below one tuple so relations
	// stay populated).
	Deletes int
	// Orders is the number of order-pair reveals, drawn along the
	// ground-truth timeline (ascending post-delta index) so the base
	// orders stay acyclic.
	Orders int
	// Domain is the value domain for inserted tuples (0 = 3).
	Domain int
	// PConstraint is the probability of one constraint add and, when the
	// spec has constraints, of one constraint drop.
	PConstraint float64
	// PCopyDrop is the probability of dropping one copy function.
	PCopyDrop float64
}

// DefaultDeltaConfig is a small update: a few arriving tuples, one
// revealed order, structural changes occasionally.
func DefaultDeltaConfig() DeltaConfig {
	return DeltaConfig{Inserts: 2, NewEntity: 0.2, Deletes: 0, Orders: 1, PConstraint: 0.1, PCopyDrop: 0.05}
}

// RandomDelta draws one delta against the given specification. The same
// rng stream yields the same delta. The returned delta always passes
// Delta.Validate against s.
func RandomDelta(rng *rand.Rand, s *spec.Spec, cfg DeltaConfig) *spec.Delta {
	if cfg.Domain <= 0 {
		cfg.Domain = 3
	}
	d := &spec.Delta{}
	if len(s.Relations) == 0 {
		return d
	}

	// Deletes first (pre-delta indices): pick tuples whose entity keeps at
	// least one member, without duplicates.
	type delKey struct {
		rel string
		idx int
	}
	deleted := make(map[delKey]bool)
	delCount := make(map[string]map[relation.Value]int)
	for k := 0; k < cfg.Deletes; k++ {
		r := s.Relations[rng.Intn(len(s.Relations))]
		if r.Len() == 0 {
			continue
		}
		idx := rng.Intn(r.Len())
		key := delKey{r.Schema.Name, idx}
		if deleted[key] {
			continue
		}
		eid := r.EID(idx)
		size := 0
		for i := range r.Tuples {
			if r.EID(i) == eid {
				size++
			}
		}
		if dc := delCount[r.Schema.Name]; dc != nil {
			size -= dc[eid]
		}
		if size <= 1 {
			continue // keep the entity populated
		}
		deleted[key] = true
		if delCount[r.Schema.Name] == nil {
			delCount[r.Schema.Name] = make(map[relation.Value]int)
		}
		delCount[r.Schema.Name][eid]++
		d.Deletes = append(d.Deletes, spec.TupleDelete{Rel: r.Schema.Name, Index: idx})
	}

	// Simulate the post-delta tuple space per relation: surviving tuples
	// in order, then inserts appended.
	finalEIDs := make(map[string][]relation.Value)
	for _, r := range s.Relations {
		var eids []relation.Value
		for i := range r.Tuples {
			if !deleted[delKey{r.Schema.Name, i}] {
				eids = append(eids, r.EID(i))
			}
		}
		finalEIDs[r.Schema.Name] = eids
	}

	fresh := 0
	for k := 0; k < cfg.Inserts; k++ {
		r := s.Relations[rng.Intn(len(s.Relations))]
		name := r.Schema.Name
		var eid relation.Value
		if len(finalEIDs[name]) == 0 || rng.Float64() < cfg.NewEntity {
			eid = relation.S(fmt.Sprintf("d%d", fresh))
			fresh++
		} else {
			eid = finalEIDs[name][rng.Intn(len(finalEIDs[name]))]
		}
		t := make(relation.Tuple, r.Schema.Arity())
		t[r.Schema.EIDIndex] = eid
		for _, ai := range r.Schema.NonEIDIndexes() {
			t[ai] = relation.I(int64(rng.Intn(cfg.Domain)))
		}
		d.Inserts = append(d.Inserts, spec.TupleInsert{Rel: name, Tuple: t})
		finalEIDs[name] = append(finalEIDs[name], eid)
	}

	// Order reveals along the timeline: i ≺ j with i < j in the final
	// index space, within one entity.
	for k := 0; k < cfg.Orders; k++ {
		r := s.Relations[rng.Intn(len(s.Relations))]
		name := r.Schema.Name
		eids := finalEIDs[name]
		byEID := make(map[relation.Value][]int)
		for i, e := range eids {
			byEID[e] = append(byEID[e], i)
		}
		var groups [][]int
		for _, g := range byEID {
			if len(g) >= 2 {
				groups = append(groups, g)
			}
		}
		if len(groups) == 0 {
			continue
		}
		g := groups[rng.Intn(len(groups))]
		x := rng.Intn(len(g) - 1)
		y := x + 1 + rng.Intn(len(g)-x-1)
		ais := r.Schema.NonEIDIndexes()
		attr := r.Schema.Attrs[ais[rng.Intn(len(ais))]]
		d.Orders = append(d.Orders, spec.OrderAdd{Rel: name, Attr: attr, I: g[x], J: g[y]})
	}

	if rng.Float64() < cfg.PConstraint {
		r := s.Relations[rng.Intn(len(s.Relations))]
		d.AddConstraints = append(d.AddConstraints,
			RandomConstraint(rng, r.Schema, fmt.Sprintf("dcd%d", rng.Intn(1<<30))))
	}
	if len(s.Constraints) > 0 && rng.Float64() < cfg.PConstraint {
		d.DropConstraints = append(d.DropConstraints,
			s.Constraints[rng.Intn(len(s.Constraints))].Name)
	}
	if len(s.Copies) > 0 && rng.Float64() < cfg.PCopyDrop {
		d.DropCopies = append(d.DropCopies, s.Copies[rng.Intn(len(s.Copies))].Name)
	}
	return d
}

// wireValue converts a relation value to its JSON wire form.
func wireValue(v relation.Value) any {
	if v.Kind == relation.KindInt {
		return v.Int
	}
	return v.Str
}

// WireDelta renders a structured delta as the PATCH /specs/{id} wire
// request, addressing tuples by decimal index (deletes pre-delta, orders
// and copy mappings post-delta) — directly POSTable against a currencyd
// registry entry holding s.
func WireDelta(s *spec.Spec, d *spec.Delta) api.DeltaRequest {
	var req api.DeltaRequest
	for _, td := range d.Deletes {
		req.DeleteTuples = append(req.DeleteTuples, api.TupleRef{Rel: td.Rel, Ref: fmt.Sprint(td.Index)})
	}
	for _, ti := range d.Inserts {
		ins := api.TupleInsert{Rel: ti.Rel, Label: ti.Label}
		for _, v := range ti.Tuple {
			ins.Values = append(ins.Values, wireValue(v))
		}
		req.InsertTuples = append(req.InsertTuples, ins)
	}
	for _, oa := range d.Orders {
		req.AddOrders = append(req.AddOrders, api.OrderPair{
			Rel: oa.Rel, Attr: oa.Attr, I: fmt.Sprint(oa.I), J: fmt.Sprint(oa.J),
		})
	}
	for _, c := range d.AddConstraints {
		req.AddConstraints = append(req.AddConstraints, parse.MarshalConstraint(c))
	}
	req.DropConstraints = append(req.DropConstraints, d.DropConstraints...)
	for _, cf := range d.AddCopies {
		req.AddCopies = append(req.AddCopies, wireCopy(cf))
	}
	req.DropCopies = append(req.DropCopies, d.DropCopies...)
	return req
}

// wireCopy renders a copy function in wire form (post-delta indices).
func wireCopy(cf *copyfn.CopyFunction) api.CopyAdd {
	out := api.CopyAdd{
		Name: cf.Name, Target: cf.Target, Source: cf.Source,
		TargetAttrs: append([]string(nil), cf.TargetAttrs...),
		SourceAttrs: append([]string(nil), cf.SourceAttrs...),
	}
	for _, p := range cf.Pairs() {
		out.Map = append(out.Map, [2]string{fmt.Sprint(p[0]), fmt.Sprint(p[1])})
	}
	return out
}
