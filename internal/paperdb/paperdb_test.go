package paperdb

import (
	"testing"

	"currency/internal/core"
	"currency/internal/parse"
	"currency/internal/query"
	"currency/internal/relation"
	"currency/internal/spec"
)

// verdicts captures the paper's worked answers for a specification: the
// CPS verdict and the DCIP verdict per relation.
type verdicts struct {
	consistent    bool
	deterministic map[string]bool
}

func measure(t *testing.T, r *core.Reasoner) verdicts {
	t.Helper()
	v := verdicts{consistent: r.Consistent(), deterministic: make(map[string]bool)}
	for _, rel := range r.Spec().Relations {
		det, err := r.Deterministic(rel.Schema.Name)
		if err != nil {
			t.Fatal(err)
		}
		v.deterministic[rel.Schema.Name] = det
	}
	return v
}

// TestSpecS0Verdicts pins the worked answers of Examples 2.3 and 3.3: S0
// is consistent, deterministic for Emp (LST(Emp) = {s3, s4, s5} in every
// completion) and not deterministic for Dept (t3 vs t4 stays open).
func TestSpecS0Verdicts(t *testing.T) {
	r, err := core.NewReasoner(SpecS0())
	if err != nil {
		t.Fatal(err)
	}
	v := measure(t, r)
	if !v.consistent {
		t.Error("S0 must be consistent (Example 2.3)")
	}
	if !v.deterministic["Emp"] {
		t.Error("S0 must be deterministic for Emp (Example 3.3)")
	}
	if v.deterministic["Dept"] {
		t.Error("S0 must not be deterministic for Dept (Example 3.2)")
	}
}

// TestSpecS1Verdicts pins Example 4.1's setting: S1 is consistent, and
// neither Emp nor Mgr is deterministic — ϕ5/ϕ6 order only LN between the
// married and divorced tuples, leaving Mary's current values open (which
// is exactly why extending ρ with m3 changes Q2's certain answer).
func TestSpecS1Verdicts(t *testing.T) {
	r, err := core.NewReasoner(SpecS1())
	if err != nil {
		t.Fatal(err)
	}
	v := measure(t, r)
	if !v.consistent {
		t.Error("S1 must be consistent (Example 4.1)")
	}
	if v.deterministic["Emp"] || v.deterministic["Mgr"] {
		t.Errorf("S1 must not be deterministic (got Emp=%v Mgr=%v)",
			v.deterministic["Emp"], v.deterministic["Mgr"])
	}
}

// TestRoundTrip marshals each fixture through the textual format, parses
// it back, and checks the reparsed specification gives identical verdicts
// and certain answers — the property currencyd's wire format relies on.
func TestRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec func() *coreSpec
	}{
		{"S0", func() *coreSpec { return &coreSpec{SpecS0(), []*query.Query{Q1(), Q2(), Q3(), Q4()}} }},
		{"S1", func() *coreSpec { return &coreSpec{SpecS1(), []*query.Query{Q2()}} }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			orig := tc.spec()
			src := parse.Marshal(orig.s, orig.qs...)
			f, err := parse.ParseFile(src)
			if err != nil {
				t.Fatalf("marshal output does not parse back: %v\n%s", err, src)
			}
			if len(f.Queries) != len(orig.qs) {
				t.Fatalf("round-trip lost queries: %d -> %d", len(orig.qs), len(f.Queries))
			}

			r0, err := core.NewReasoner(orig.s)
			if err != nil {
				t.Fatal(err)
			}
			r1, err := core.NewReasoner(f.Spec)
			if err != nil {
				t.Fatal(err)
			}
			v0, v1 := measure(t, r0), measure(t, r1)
			if v0.consistent != v1.consistent {
				t.Errorf("consistency changed across round-trip: %v -> %v", v0.consistent, v1.consistent)
			}
			for rel, det := range v0.deterministic {
				if v1.deterministic[rel] != det {
					t.Errorf("Deterministic(%s) changed across round-trip: %v -> %v", rel, det, v1.deterministic[rel])
				}
			}
			for i, q := range orig.qs {
				want, wantEmpty, err := r0.CertainAnswers(q)
				if err != nil {
					t.Fatal(err)
				}
				got, gotEmpty, err := r1.CertainAnswers(f.Queries[i])
				if err != nil {
					t.Fatal(err)
				}
				if wantEmpty != gotEmpty || (!wantEmpty && !want.Equal(got)) {
					t.Errorf("%s changed across round-trip: %v -> %v", q.Name, want, got)
				}
			}
		})
	}
}

type coreSpec struct {
	s  *spec.Spec
	qs []*query.Query
}

// TestWorkedCertainAnswers re-pins Example 1.1 through the fixtures: Q1=80,
// Q2=Dupont, Q3=6 Main St, Q4=6000.
func TestWorkedCertainAnswers(t *testing.T) {
	r, err := core.NewReasoner(SpecS0())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		q    *query.Query
		want relation.Value
	}{
		{Q1(), relation.I(80)},
		{Q2(), relation.S("Dupont")},
		{Q3(), relation.S("6 Main St")},
		{Q4(), relation.I(6000)},
	} {
		res, modEmpty, err := r.CertainAnswers(tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if modEmpty {
			t.Fatalf("%s: Mod(S0) must not be empty", tc.q.Name)
		}
		if len(res.Rows) != 1 || len(res.Rows[0]) != 1 || res.Rows[0][0] != tc.want {
			t.Errorf("%s = %v, want single answer %v", tc.q.Name, res, tc.want)
		}
	}
}
