// Package paperdb builds the running example of the paper: the company
// database of Figure 1 (relations Emp and Dept), the Mgr relation of
// Figure 3, the denial constraints of Example 2.1, the copy functions of
// Examples 2.2 and 4.1, and the queries Q1–Q4 of Example 1.1. Tests,
// examples and benchmarks all reproduce the paper's worked answers from
// these fixtures.
package paperdb

import (
	"currency/internal/copyfn"
	"currency/internal/dc"
	"currency/internal/query"
	"currency/internal/relation"
	"currency/internal/spec"
)

// Tuple labels match the paper: s1..s5 in Emp, t1..t4 in Dept, m1..m3 for
// Mgr's s'1..s'3.

// Emp returns the Emp relation of Figure 1. Entity e1 is Mary (s1, s2,
// s3); s4 (Bob Luth) and s5 (Robert Luth) are distinct entities, matching
// Example 2.3 where LST(Emp) = {s3, s4, s5}.
func Emp() *relation.TemporalInstance {
	sc := relation.MustSchema("Emp", "eid", "FN", "LN", "address", "salary", "status")
	dt := relation.NewTemporal(sc)
	add := func(label string, vals ...relation.Value) {
		if _, err := dt.AddLabeled(label, relation.Tuple(vals)); err != nil {
			panic(err)
		}
	}
	add("s1", relation.S("e1"), relation.S("Mary"), relation.S("Smith"), relation.S("2 Small St"), relation.I(50), relation.S("single"))
	add("s2", relation.S("e1"), relation.S("Mary"), relation.S("Dupont"), relation.S("10 Elm Ave"), relation.I(50), relation.S("married"))
	add("s3", relation.S("e1"), relation.S("Mary"), relation.S("Dupont"), relation.S("6 Main St"), relation.I(80), relation.S("married"))
	add("s4", relation.S("e2"), relation.S("Bob"), relation.S("Luth"), relation.S("8 Cowan St"), relation.I(80), relation.S("married"))
	add("s5", relation.S("e3"), relation.S("Robert"), relation.S("Luth"), relation.S("8 Drum St"), relation.I(55), relation.S("married"))
	return dt
}

// Dept returns the Dept relation of Figure 1; dname is the EID attribute
// (Example 2.3).
func Dept() *relation.TemporalInstance {
	sc := relation.MustSchema("Dept", "dname", "mgrFN", "mgrLN", "mgrAddr", "budget")
	dt := relation.NewTemporal(sc)
	add := func(label string, vals ...relation.Value) {
		if _, err := dt.AddLabeled(label, relation.Tuple(vals)); err != nil {
			panic(err)
		}
	}
	add("t1", relation.S("R&D"), relation.S("Mary"), relation.S("Smith"), relation.S("2 Small St"), relation.I(6500))
	add("t2", relation.S("R&D"), relation.S("Mary"), relation.S("Smith"), relation.S("2 Small St"), relation.I(7000))
	add("t3", relation.S("R&D"), relation.S("Mary"), relation.S("Dupont"), relation.S("6 Main St"), relation.I(6000))
	add("t4", relation.S("R&D"), relation.S("Ed"), relation.S("Luth"), relation.S("8 Cowan St"), relation.I(6000))
	return dt
}

// Mgr returns the Mgr relation of Figure 3; all three tuples refer to Mary
// (entity e1).
func Mgr() *relation.TemporalInstance {
	sc := relation.MustSchema("Mgr", "eid", "FN", "LN", "address", "salary", "status")
	dt := relation.NewTemporal(sc)
	add := func(label string, vals ...relation.Value) {
		if _, err := dt.AddLabeled(label, relation.Tuple(vals)); err != nil {
			panic(err)
		}
	}
	add("m1", relation.S("e1"), relation.S("Mary"), relation.S("Dupont"), relation.S("6 Main St"), relation.I(60), relation.S("married"))
	add("m2", relation.S("e1"), relation.S("Mary"), relation.S("Dupont"), relation.S("6 Main St"), relation.I(80), relation.S("married"))
	add("m3", relation.S("e1"), relation.S("Mary"), relation.S("Smith"), relation.S("2 Small St"), relation.I(80), relation.S("divorced"))
	return dt
}

// Phi1 is ϕ1 of Example 2.1: higher salary is more current salary.
func Phi1() *dc.Constraint {
	return &dc.Constraint{
		Name:     "phi1",
		Relation: "Emp",
		Vars:     []string{"s", "t"},
		Cmps: []dc.Comparison{
			{L: dc.AttrOp("s", "salary"), Op: dc.OpGt, R: dc.AttrOp("t", "salary")},
		},
		Head: dc.OrderAtom{U: "t", V: "s", Attr: "salary"},
	}
}

// Phi2 is ϕ2: married is a more current status than single, and tuples
// with the more current status carry the more current last name.
func Phi2() *dc.Constraint {
	return &dc.Constraint{
		Name:     "phi2",
		Relation: "Emp",
		Vars:     []string{"s", "t"},
		Cmps: []dc.Comparison{
			{L: dc.AttrOp("s", "status"), Op: dc.OpEq, R: dc.ConstOp(relation.S("married"))},
			{L: dc.AttrOp("t", "status"), Op: dc.OpEq, R: dc.ConstOp(relation.S("single"))},
		},
		Head: dc.OrderAtom{U: "t", V: "s", Attr: "LN"},
	}
}

// Phi2Status encodes Example 1.1(2)(a)'s status-transition rule on the
// status attribute itself: marital status changes single → married, so a
// married tuple carries a more current status than a single one. Example
// 2.1's ϕ2 as printed orders only LN; Example 3.3's claim that
// LST(Emp) = {s3, s4, s5} in every completion additionally requires this
// rule, otherwise the current status of Mary could be "single".
func Phi2Status() *dc.Constraint {
	return &dc.Constraint{
		Name:     "phi2s",
		Relation: "Emp",
		Vars:     []string{"s", "t"},
		Cmps: []dc.Comparison{
			{L: dc.AttrOp("s", "status"), Op: dc.OpEq, R: dc.ConstOp(relation.S("married"))},
			{L: dc.AttrOp("t", "status"), Op: dc.OpEq, R: dc.ConstOp(relation.S("single"))},
		},
		Head: dc.OrderAtom{U: "t", V: "s", Attr: "status"},
	}
}

// Phi3 is ϕ3: a more current salary implies a more current address.
func Phi3() *dc.Constraint {
	return &dc.Constraint{
		Name:     "phi3",
		Relation: "Emp",
		Vars:     []string{"s", "t"},
		Orders:   []dc.OrderAtom{{U: "t", V: "s", Attr: "salary"}},
		Head:     dc.OrderAtom{U: "t", V: "s", Attr: "address"},
	}
}

// Phi4 is ϕ4: a more current manager address implies a more current budget.
func Phi4() *dc.Constraint {
	return &dc.Constraint{
		Name:     "phi4",
		Relation: "Dept",
		Vars:     []string{"s", "t"},
		Orders:   []dc.OrderAtom{{U: "t", V: "s", Attr: "mgrAddr"}},
		Head:     dc.OrderAtom{U: "t", V: "s", Attr: "budget"},
	}
}

// Phi5 is ϕ5 of Example 4.1 on Mgr: divorced is a more current status than
// married, and carries the more current last name.
func Phi5() *dc.Constraint {
	return &dc.Constraint{
		Name:     "phi5",
		Relation: "Mgr",
		Vars:     []string{"s", "t"},
		Cmps: []dc.Comparison{
			{L: dc.AttrOp("s", "status"), Op: dc.OpEq, R: dc.ConstOp(relation.S("divorced"))},
			{L: dc.AttrOp("t", "status"), Op: dc.OpEq, R: dc.ConstOp(relation.S("married"))},
		},
		Head: dc.OrderAtom{U: "t", V: "s", Attr: "LN"},
	}
}

// Phi6 is the Emp analogue of ϕ5, reflecting Example 1.1's statement that
// marital status evolves single → married → divorced. Example 4.1's claim
// that extending ρ with Mgr's divorced record makes "Smith" the certain
// current last name relies on this rule holding on Emp as well.
func Phi6() *dc.Constraint {
	return &dc.Constraint{
		Name:     "phi6",
		Relation: "Emp",
		Vars:     []string{"s", "t"},
		Cmps: []dc.Comparison{
			{L: dc.AttrOp("s", "status"), Op: dc.OpEq, R: dc.ConstOp(relation.S("divorced"))},
			{L: dc.AttrOp("t", "status"), Op: dc.OpEq, R: dc.ConstOp(relation.S("married"))},
		},
		Head: dc.OrderAtom{U: "t", V: "s", Attr: "LN"},
	}
}

// Rho returns the copy function ρ of Example 2.2: Dept[mgrAddr] ⇐
// Emp[address] with ρ(t1)=s1, ρ(t2)=s1, ρ(t3)=s3, ρ(t4)=s4.
func Rho() *copyfn.CopyFunction {
	cf := copyfn.New("rho", "Dept", "Emp", []string{"mgrAddr"}, []string{"address"})
	cf.Set(0, 0) // t1 <- s1
	cf.Set(1, 0) // t2 <- s1
	cf.Set(2, 2) // t3 <- s3
	cf.Set(3, 3) // t4 <- s4
	return cf
}

// SpecS0 builds the specification S0 of Example 2.3: Emp and Dept of
// Figure 1, constraints ϕ1–ϕ4, copy function ρ, and no initial currency
// orders.
func SpecS0() *spec.Spec {
	s := spec.New()
	s.MustAddRelation(Emp())
	s.MustAddRelation(Dept())
	s.MustAddConstraint(Phi1())
	s.MustAddConstraint(Phi2())
	s.MustAddConstraint(Phi2Status())
	s.MustAddConstraint(Phi3())
	s.MustAddConstraint(Phi4())
	s.MustAddCopy(Rho())
	return s
}

// RhoMgr returns the copy function of Example 4.1: Emp[FN,LN,address,
// salary,status] ⇐ Mgr[...] with ρ(s3)=s'2 (m2).
func RhoMgr() *copyfn.CopyFunction {
	attrs := []string{"FN", "LN", "address", "salary", "status"}
	cf := copyfn.New("rhoMgr", "Emp", "Mgr", attrs, attrs)
	cf.Set(2, 1) // s3 <- m2
	return cf
}

// SpecS1 builds the specification S1 of Example 4.1: Emp (Figure 1) and
// Mgr (Figure 3), constraints ϕ1–ϕ3 and ϕ6 on Emp, ϕ5 on Mgr, and the copy
// function RhoMgr.
func SpecS1() *spec.Spec {
	s := spec.New()
	s.MustAddRelation(Emp())
	s.MustAddRelation(Mgr())
	s.MustAddConstraint(Phi1())
	s.MustAddConstraint(Phi2())
	s.MustAddConstraint(Phi3())
	s.MustAddConstraint(Phi6())
	s.MustAddConstraint(Phi5())
	s.MustAddCopy(RhoMgr())
	return s
}

// Q1 is Example 1.1's query "find Mary's current salary" as an SP query.
func Q1() *query.Query {
	return &query.Query{
		Name: "Q1",
		Head: []string{"sal"},
		Body: query.Exists{
			Vars: []string{"e", "fn", "ln", "a", "st"},
			F: query.And{Fs: []query.Formula{
				query.Atom{Rel: "Emp", Terms: []query.Term{
					query.V("e"), query.V("fn"), query.V("ln"), query.V("a"), query.V("sal"), query.V("st"),
				}},
				query.Cmp{L: query.V("fn"), Op: query.CmpEq, R: query.C(relation.S("Mary"))},
			}},
		},
	}
}

// Q2 finds Mary's current last name.
func Q2() *query.Query {
	return &query.Query{
		Name: "Q2",
		Head: []string{"ln"},
		Body: query.Exists{
			Vars: []string{"e", "fn", "a", "sal", "st"},
			F: query.And{Fs: []query.Formula{
				query.Atom{Rel: "Emp", Terms: []query.Term{
					query.V("e"), query.V("fn"), query.V("ln"), query.V("a"), query.V("sal"), query.V("st"),
				}},
				query.Cmp{L: query.V("fn"), Op: query.CmpEq, R: query.C(relation.S("Mary"))},
			}},
		},
	}
}

// Q3 finds Mary's current address.
func Q3() *query.Query {
	return &query.Query{
		Name: "Q3",
		Head: []string{"a"},
		Body: query.Exists{
			Vars: []string{"e", "fn", "ln", "sal", "st"},
			F: query.And{Fs: []query.Formula{
				query.Atom{Rel: "Emp", Terms: []query.Term{
					query.V("e"), query.V("fn"), query.V("ln"), query.V("a"), query.V("sal"), query.V("st"),
				}},
				query.Cmp{L: query.V("fn"), Op: query.CmpEq, R: query.C(relation.S("Mary"))},
			}},
		},
	}
}

// Q4 finds the current budget of department R&D.
func Q4() *query.Query {
	return &query.Query{
		Name: "Q4",
		Head: []string{"b"},
		Body: query.Exists{
			Vars: []string{"d", "mfn", "mln", "ma"},
			F: query.And{Fs: []query.Formula{
				query.Atom{Rel: "Dept", Terms: []query.Term{
					query.V("d"), query.V("mfn"), query.V("mln"), query.V("ma"), query.V("b"),
				}},
				query.Cmp{L: query.V("d"), Op: query.CmpEq, R: query.C(relation.S("R&D"))},
			}},
		},
	}
}
